// Package shard runs the two-stage search over an edge-cut partition of the
// graph: N shards each execute the unchanged bottom-up kernel on their local
// subgraph and frontier, while a coordinator performs per-BFS-level
// cross-shard frontier exchange (boundary activations batched into pooled
// per-(source,destination) buffers — no locks on the exchange path) and a
// global top-k merge whose monotone termination bound stops the sharded run
// at exactly the level the solo run would stop. Answers are bit-identical to
// the solo engine, which stays the ground truth.
package shard

import (
	"fmt"
	"sync"

	"wikisearch/internal/graph"
)

// Topology is the immutable sharded view of one graph: the partition, the
// per-shard subgraphs, and a cache of shard-local activation-level vectors
// gathered from the engine's per-α global vectors. A Topology is shared by
// every query and safe for concurrent use.
type Topology struct {
	G    *graph.Graph
	Part *graph.Partition
	N    int

	// routes[s] routes shard s's boundary activations: indexed by ghost
	// ordinal (localID − Owned), each entry carries the owning shard and
	// the node's local id there. One entry per ghost instead of per node,
	// so the per-message probes on the exchange path hit a table a few
	// hundred KB wide rather than the full-graph Owner/OwnerLocal arrays.
	routes [][]ghostRoute

	mu sync.Mutex
	// levels caches per-shard gathers keyed by the identity of the global
	// level vector (the engine caches one stable vector per α, so identity
	// is the cheapest exact key).
	levels map[*uint8][][]uint8
}

// NewTopology partitions g into n edge-cut shards.
func NewTopology(g *graph.Graph, n int) (*Topology, error) {
	part, err := graph.PartitionGraph(g, n)
	if err != nil {
		return nil, err
	}
	return FromPartition(g, part), nil
}

// ghostRoute is one precomputed routing entry: the shard owning the ghost's
// global node and the node's local id on that shard.
type ghostRoute struct {
	dest  int32
	local int32
}

// FromPartition wraps an existing partition (e.g. one reloaded from a
// sharded dump) as a Topology and precomputes the ghost routing tables.
func FromPartition(g *graph.Graph, part *graph.Partition) *Topology {
	routes := make([][]ghostRoute, part.K)
	for s, sh := range part.Shards {
		rs := make([]ghostRoute, sh.Ghosts())
		for i := range rs {
			gid := sh.L2G[sh.Owned+i]
			rs[i] = ghostRoute{dest: part.Owner[gid], local: part.OwnerLocal[gid]}
		}
		routes[s] = rs
	}
	return &Topology{G: g, Part: part, N: part.K, routes: routes, levels: make(map[*uint8][][]uint8)}
}

// levelsFor returns the per-shard activation-level vectors for one global
// vector, gathering and caching on first use. Ghost entries carry the true
// global activation level of the remote node, so the kernel's §IV-B gate
// decides identically to the solo run.
func (t *Topology) levelsFor(global []uint8) ([][]uint8, error) {
	if len(global) != t.G.NumNodes() {
		return nil, fmt.Errorf("shard: level vector sized %d, graph has %d nodes", len(global), t.G.NumNodes())
	}
	key := &global[0]
	t.mu.Lock()
	defer t.mu.Unlock()
	if lv, ok := t.levels[key]; ok {
		return lv, nil
	}
	lv := make([][]uint8, t.N)
	for s := 0; s < t.N; s++ {
		sh := t.Part.Shards[s]
		loc := make([]uint8, len(sh.L2G))
		for li, gid := range sh.L2G {
			loc[li] = global[gid]
		}
		lv[s] = loc
	}
	t.levels[key] = lv
	return lv, nil
}
