package device

import (
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestLaunchCoversGrid(t *testing.T) {
	d := &Device{SMs: 4, WarpSize: 8}
	const warps = 100
	var hits [warps * 8]atomic.Int32
	d.Launch(warps, func(w, lane int) {
		hits[w*8+lane].Add(1)
	})
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("cell %d executed %d times", i, hits[i].Load())
		}
	}
}

func TestLaunchLaneOrderWithinWarp(t *testing.T) {
	// SIMT serialization: within one warp, lanes run in ascending order.
	d := &Device{SMs: 2, WarpSize: 16}
	last := make([]int, 10)
	for i := range last {
		last[i] = -1
	}
	d.Launch(10, func(w, lane int) {
		if last[w] != lane-1 {
			t.Errorf("warp %d: lane %d ran after lane %d", w, lane, last[w])
		}
		last[w] = lane
	})
}

func TestLaunch1D(t *testing.T) {
	d := &Device{SMs: 3, WarpSize: 32}
	for _, n := range []int{0, 1, 31, 32, 33, 1000} {
		var count atomic.Int64
		seen := make([]atomic.Int32, n)
		d.Launch1D(n, func(i int) {
			count.Add(1)
			seen[i].Add(1)
		})
		if int(count.Load()) != n {
			t.Fatalf("n=%d: %d invocations", n, count.Load())
		}
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Fatalf("n=%d: index %d executed %d times", n, i, seen[i].Load())
			}
		}
	}
}

func TestTransferTime(t *testing.T) {
	d := GTX1080Ti()
	// The paper's §V-B example: a 300 MB matrix over ~12 GB/s ≈ 25 ms.
	sec := d.TransferTime(300 << 20)
	if sec < 0.02 || sec > 0.03 {
		t.Fatalf("transfer of 300MB = %v s, want ≈ 0.025", sec)
	}
	if (&Device{}).TransferTime(1<<30) != 0 {
		t.Fatal("zero-bandwidth device must report 0")
	}
}

func TestQueueConcurrentAppend(t *testing.T) {
	d := &Device{SMs: 8, WarpSize: 32}
	q := NewQueue(32 * 64)
	d.Launch(64, func(w, lane int) {
		q.Append(int32(w*32 + lane))
	})
	items := append([]int32(nil), q.Items()...)
	if len(items) != 32*64 {
		t.Fatalf("queue has %d items, want %d", len(items), 32*64)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	for i, v := range items {
		if int(v) != i {
			t.Fatalf("missing or duplicated item: items[%d] = %d", i, v)
		}
	}
	q.Reset()
	if q.Len() != 0 {
		t.Fatal("Reset did not empty queue")
	}
}

func TestLaunchGridShapeQuick(t *testing.T) {
	f := func(warpsSeed, smSeed, wsSeed uint8) bool {
		warps := int(warpsSeed%64) + 1
		d := &Device{SMs: int(smSeed%8) + 1, WarpSize: int(wsSeed%16) + 1}
		var count atomic.Int64
		d.Launch(warps, func(w, lane int) {
			if w < 0 || w >= warps || lane < 0 || lane >= d.WarpSize {
				t.Errorf("out-of-grid invocation (%d,%d)", w, lane)
			}
			count.Add(1)
		})
		return int(count.Load()) == warps*d.WarpSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceDefaults(t *testing.T) {
	d := &Device{}
	if d.sms() <= 0 || d.warpSize() <= 0 {
		t.Fatal("defaults not applied")
	}
	var ran atomic.Bool
	d.Launch(1, func(w, lane int) { ran.Store(true) })
	if !ran.Load() {
		t.Fatal("kernel not run with default config")
	}
	d.Launch(0, func(w, lane int) { t.Error("kernel run for empty grid") })
}
