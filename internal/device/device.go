// Package device simulates the GPU execution model the paper's GPU-Par
// implementation targets (a GTX 1080 Ti): kernels launched over a grid of
// warps, each warp a group of lanes executing in lockstep (SIMT), with a
// host↔device transfer model for the node-keyword matrix.
//
// The simulator preserves the *structure* of the paper's GPU algorithm —
// warp ↔ (frontier, BFS instance) mapping, lane ↔ neighbor striding, locked
// frontier enqueue on device, device-side initialization — so the Go
// reproduction exercises the same decomposition and the same lock-free
// property, while DESIGN.md documents that goroutine wall-clock cannot
// reproduce real GPU speedups. The transfer model reproduces the paper's
// §V-B bandwidth arithmetic (300 MB matrix over ~12 GB/s ≈ 25 ms).
package device

import (
	"sync"
	"sync/atomic"
)

// Device describes the simulated accelerator.
type Device struct {
	// SMs is the number of warp schedulers simulated with goroutines
	// (streaming multiprocessors). <= 0 selects 8.
	SMs int
	// WarpSize is the number of lanes per warp (32 on NVIDIA hardware).
	WarpSize int
	// MemoryBytes is the device global-memory capacity (11 GiB on the
	// paper's GTX 1080 Ti); used for the Table IV storage accounting.
	MemoryBytes int64
	// HostBandwidth is the device→host transfer bandwidth in bytes/second
	// (the paper assumes ~12 GB/s for PCIe with DDR5X timings).
	HostBandwidth float64
}

// GTX1080Ti returns the paper's evaluation GPU.
func GTX1080Ti() *Device {
	return &Device{
		SMs:           28,
		WarpSize:      32,
		MemoryBytes:   11 << 30,
		HostBandwidth: 12e9,
	}
}

func (d *Device) sms() int {
	if d.SMs <= 0 {
		return 8
	}
	return d.SMs
}

func (d *Device) warpSize() int {
	if d.WarpSize <= 0 {
		return 32
	}
	return d.WarpSize
}

// Launch runs kernel over `warps` warps. Warps are scheduled dynamically
// across the simulated SMs; within a warp the kernel is invoked for each
// lane in order, which is how SIMT lockstep serializes on a simulator.
// Launch returns when the whole grid has executed (stream-synchronous).
func (d *Device) Launch(warps int, kernel func(warp, lane int)) {
	if warps <= 0 {
		return
	}
	ws := d.warpSize()
	sms := d.sms()
	if sms > warps {
		sms = warps
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(sms)
	for s := 0; s < sms; s++ {
		go func() {
			defer wg.Done()
			for {
				w := int(next.Add(1)) - 1
				if w >= warps {
					return
				}
				for lane := 0; lane < ws; lane++ {
					kernel(w, lane)
				}
			}
		}()
	}
	wg.Wait()
}

// Launch1D runs kernel once per thread index in [0, threads), the flat
// grid used for initialization and identification kernels.
func (d *Device) Launch1D(threads int, kernel func(i int)) {
	ws := d.warpSize()
	warps := (threads + ws - 1) / ws
	d.Launch(warps, func(warp, lane int) {
		i := warp*ws + lane
		if i < threads {
			kernel(i)
		}
	})
}

// TransferTime returns the simulated host↔device transfer duration in
// seconds for n bytes.
func (d *Device) TransferTime(n int64) float64 {
	if d.HostBandwidth <= 0 {
		return 0
	}
	return float64(n) / d.HostBandwidth
}

// Queue is the device-side frontier queue: appends use an atomic ticket
// (the "locked writing" the paper uses for GPU frontier enqueue, viable
// there thanks to DDR5X bandwidth).
type Queue struct {
	buf  []int32
	next atomic.Int64
}

// NewQueue returns a queue with the given capacity.
func NewQueue(capacity int) *Queue {
	return &Queue{buf: make([]int32, capacity)}
}

// Append reserves a slot and stores v. Safe for concurrent use from kernel
// lanes. Appends beyond capacity panic: the search sizes the queue at |V|,
// and a frontier can never exceed the node count.
func (q *Queue) Append(v int32) {
	i := q.next.Add(1) - 1
	q.buf[i] = v
}

// Reset empties the queue for the next level.
func (q *Queue) Reset() { q.next.Store(0) }

// Items returns the appended items. The order is nondeterministic (ticket
// order); callers that need determinism must sort.
func (q *Queue) Items() []int32 { return q.buf[:q.next.Load()] }

// Len returns the number of appended items.
func (q *Queue) Len() int { return int(q.next.Load()) }
