package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("g", "a gauge")
	g.Inc()
	g.Inc()
	g.Dec()
	g.Add(10)
	if g.Value() != 11 {
		t.Fatalf("gauge = %d, want 11", g.Value())
	}
	g.Set(-3)
	if g.Value() != -3 {
		t.Fatalf("gauge = %d, want -3", g.Value())
	}
	// Re-registering the same name returns the same metric.
	if r.Counter("c_total", "a counter").Value() != 5 {
		t.Fatal("re-registration lost the counter")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 5.605; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestVecsAndExposition(t *testing.T) {
	r := NewRegistry()
	reqs := r.CounterVec("http_requests_total", "requests by code", "code")
	reqs.With("200").Add(7)
	reqs.With("503").Inc()
	phases := r.HistogramVec("phase_seconds", "per-phase latency", "phase", []float64{0.001, 1})
	phases.With("Expansion").Observe(0.5)
	phases.With("Top-down Processing").Observe(0.0001)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		"# HELP http_requests_total requests by code",
		"# TYPE http_requests_total counter",
		`http_requests_total{code="200"} 7`,
		`http_requests_total{code="503"} 1`,
		`phase_seconds_bucket{phase="Expansion",le="1"} 1`,
		`phase_seconds_bucket{phase="Top-down Processing",le="0.001"} 1`,
		`phase_seconds_count{phase="Expansion"} 1`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	h := r.Histogram("h_seconds", "", nil)
	v := r.CounterVec("v_total", "", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) / 1000)
				v.With([]string{"a", "b", "c"}[i%3]).Inc()
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	total := v.With("a").Value() + v.With("b").Value() + v.With("c").Value()
	if total != 8000 {
		t.Fatalf("vec total = %d, want 8000", total)
	}
}
