// Package metrics is a dependency-free instrumentation layer for the
// search service: counters, gauges and latency histograms, registered in a
// Registry that renders the Prometheus text exposition format. The DKWS
// system (Jiang et al., 2023) argues that serving keyword search at scale
// needs the request lifecycle monitored as carefully as the algorithm; this
// package is that measurement surface, built on sync/atomic only so the
// hot path costs a handful of atomic adds.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default latency buckets in seconds, spanning the
// sub-millisecond cache hits through multi-second deadline territory.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into cumulative buckets, Prometheus-style.
// Observations and rendering are lock-free.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// ObserveN records n observations of value v in one shot — how bucketed
// sources (the runtime's histograms) are folded in without n loop
// iterations.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if n == 0 {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(n)
	h.sum.add(v * float64(n))
	h.count.Add(n)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// atomicFloat is a float64 accumulated with compare-and-swap.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// metricKind tags a family for the # TYPE line.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// family is one named metric with zero or more labeled children.
type family struct {
	name  string
	help  string
	kind  metricKind
	label string // label name for vec families, "" for scalars

	mu       sync.Mutex
	order    []string // label values in creation order
	children map[string]any
	bounds   []float64 // histogram families only
}

func (f *family) child(labelValue string) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[labelValue]; ok {
		return c
	}
	var c any
	switch f.kind {
	case kindCounter:
		c = &Counter{}
	case kindGauge:
		c = &Gauge{}
	case kindHistogram:
		c = newHistogram(f.bounds)
	}
	f.children[labelValue] = c
	f.order = append(f.order, labelValue)
	return c
}

// CounterVec is a family of counters partitioned by one label.
type CounterVec struct{ f *family }

// With returns (creating on first use) the counter for the label value.
func (v *CounterVec) With(labelValue string) *Counter {
	return v.f.child(labelValue).(*Counter)
}

// HistogramVec is a family of histograms partitioned by one label.
type HistogramVec struct{ f *family }

// With returns (creating on first use) the histogram for the label value.
func (v *HistogramVec) With(labelValue string) *Histogram {
	return v.f.child(labelValue).(*Histogram)
}

// Registry holds metric families and renders them in registration order.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	hooks    []func()
}

// AddScrapeHook registers fn to run at the start of every WritePrometheus
// call, before the families render. Collectors whose values are snapshots
// (the Go runtime stats) refresh themselves here, so every scrape sees
// current numbers without a background poller.
func (r *Registry) AddScrapeHook(fn func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func (r *Registry) register(name, help string, kind metricKind, label string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || f.label != label {
			panic(fmt.Sprintf("metrics: %q re-registered as a different metric", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind, label: label,
		children: map[string]any{}, bounds: bounds,
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// Counter registers (or returns the existing) counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, "", nil).child("").(*Counter)
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, "", nil).child("").(*Gauge)
}

// Histogram registers (or returns the existing) histogram. Nil buckets
// select DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(name, help, kindHistogram, "", buckets)
	return f.child("").(*Histogram)
}

// CounterVec registers (or returns the existing) counter family keyed by
// one label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, label, nil)}
}

// HistogramVec registers (or returns the existing) histogram family keyed
// by one label. Nil buckets select DefBuckets.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{r.register(name, help, kindHistogram, label, buckets)}
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	r.mu.Unlock()
	// Hooks run outside the lock: they update (and may lazily register)
	// metrics through the registry themselves.
	for _, fn := range hooks {
		fn()
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns an http.Handler serving the exposition, suitable for
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

func (f *family) write(b *strings.Builder) {
	f.mu.Lock()
	order := append([]string(nil), f.order...)
	children := make([]any, len(order))
	for i, lv := range order {
		children[i] = f.children[lv]
	}
	f.mu.Unlock()
	if len(children) == 0 {
		return
	}
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for i, lv := range order {
		switch c := children[i].(type) {
		case *Counter:
			fmt.Fprintf(b, "%s%s %d\n", f.name, f.labels(lv, ""), c.Value())
		case *Gauge:
			fmt.Fprintf(b, "%s%s %d\n", f.name, f.labels(lv, ""), c.Value())
		case *Histogram:
			cum := uint64(0)
			for j, bound := range c.bounds {
				cum += c.counts[j].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, f.labels(lv, formatBound(bound)), cum)
			}
			cum += c.counts[len(c.bounds)].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, f.labels(lv, "+Inf"), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, f.labels(lv, ""), formatFloat(c.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, f.labels(lv, ""), c.Count())
		}
	}
}

// labels renders the label block for one series: the family label (if any)
// plus the histogram le bound (if any).
func (f *family) labels(labelValue, le string) string {
	var parts []string
	if f.label != "" {
		// %q escapes backslash, quote and newline exactly as the
		// Prometheus text format requires.
		parts = append(parts, fmt.Sprintf("%s=%q", f.label, labelValue))
	}
	if le != "" {
		parts = append(parts, fmt.Sprintf("le=%q", le))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatBound(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
