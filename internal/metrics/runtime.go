package metrics

import (
	"math"
	"sync"

	rm "runtime/metrics"
)

// RuntimeCollector exports Go runtime health — goroutine count, heap size,
// GC pause distribution and a scheduler-latency proxy — from the stdlib
// runtime/metrics interface. It registers a scrape hook, so the numbers
// refresh on every /metrics scrape with no background goroutine.
//
// The runtime's pause and latency metrics are cumulative histograms; the
// collector diffs bucket counts between scrapes and folds the deltas into
// the registry's own histograms (each delta observed at its bucket's upper
// bound, so quantiles read pessimistically).
type RuntimeCollector struct {
	goroutines *Gauge
	heapBytes  *Gauge
	gcPause    *Histogram
	schedLat   *Histogram

	mu        sync.Mutex
	samples   []rm.Sample
	prevPause []uint64
	prevSched []uint64
}

// runtimeBuckets span the microsecond GC pauses through scheduler stalls
// in deadline territory.
var runtimeBuckets = []float64{
	1e-6, 1e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 0.1, 1,
}

// NewRuntimeCollector registers the runtime health metrics in r and hooks
// their refresh into its scrapes.
func NewRuntimeCollector(r *Registry) *RuntimeCollector {
	c := &RuntimeCollector{
		goroutines: r.Gauge("wikisearch_go_goroutines",
			"Live goroutines at scrape time."),
		heapBytes: r.Gauge("wikisearch_go_heap_bytes",
			"Bytes of live heap objects at scrape time."),
		gcPause: r.Histogram("wikisearch_go_gc_pause_seconds",
			"Distribution of stop-the-world GC pauses since process start.",
			runtimeBuckets),
		schedLat: r.Histogram("wikisearch_go_sched_latency_seconds",
			"Distribution of time goroutines spent runnable before running (scheduler latency proxy).",
			runtimeBuckets),
		samples: []rm.Sample{
			{Name: "/sched/goroutines:goroutines"},
			{Name: "/memory/classes/heap/objects:bytes"},
			{Name: "/gc/pauses:seconds"},
			{Name: "/sched/latencies:seconds"},
		},
	}
	r.AddScrapeHook(c.refresh)
	return c
}

// refresh re-reads the runtime metrics; called by the registry on scrape.
func (c *RuntimeCollector) refresh() {
	c.mu.Lock()
	defer c.mu.Unlock()
	rm.Read(c.samples)
	for i := range c.samples {
		s := &c.samples[i]
		switch s.Name {
		case "/sched/goroutines:goroutines":
			if s.Value.Kind() == rm.KindUint64 {
				c.goroutines.Set(int64(s.Value.Uint64()))
			}
		case "/memory/classes/heap/objects:bytes":
			if s.Value.Kind() == rm.KindUint64 {
				c.heapBytes.Set(int64(s.Value.Uint64()))
			}
		case "/gc/pauses:seconds":
			if s.Value.Kind() == rm.KindFloat64Histogram {
				c.prevPause = diffHistogram(c.gcPause, s.Value.Float64Histogram(), c.prevPause)
			}
		case "/sched/latencies:seconds":
			if s.Value.Kind() == rm.KindFloat64Histogram {
				c.prevSched = diffHistogram(c.schedLat, s.Value.Float64Histogram(), c.prevSched)
			}
		}
	}
}

// diffHistogram folds the bucket-count deltas of a cumulative runtime
// histogram since the previous snapshot into h and returns the updated
// snapshot. Each delta is observed at its bucket's finite upper bound.
func diffHistogram(h *Histogram, cur *rm.Float64Histogram, prev []uint64) []uint64 {
	if cur == nil {
		return prev
	}
	if len(prev) < len(cur.Counts) {
		prev = append(prev, make([]uint64, len(cur.Counts)-len(prev))...)
	}
	for i, n := range cur.Counts {
		if d := n - prev[i]; n > prev[i] && d > 0 {
			// Buckets has len(Counts)+1 boundaries; the outermost may be
			// ±Inf. Prefer the upper bound, fall back to the lower.
			v := cur.Buckets[i+1]
			if math.IsInf(v, 0) {
				v = cur.Buckets[i]
			}
			if !math.IsInf(v, 0) && !math.IsNaN(v) {
				h.ObserveN(v, d)
			}
		}
		prev[i] = n
	}
	return prev
}
