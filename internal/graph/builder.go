package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates nodes and directed labeled edges and produces an
// immutable CSR Graph. It is not safe for concurrent use.
type Builder struct {
	labels   []string
	descs    []string
	relNames []string
	relIDs   map[string]RelID

	from []NodeID
	to   []NodeID
	rel  []RelID
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{relIDs: make(map[string]RelID)}
}

// AddNode adds a node with the given display label and description and
// returns its id.
func (b *Builder) AddNode(label, desc string) NodeID {
	b.labels = append(b.labels, label)
	b.descs = append(b.descs, desc)
	return NodeID(len(b.labels) - 1)
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.labels) }

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.from) }

// Rel interns a relationship type name and returns its id.
func (b *Builder) Rel(name string) RelID {
	if id, ok := b.relIDs[name]; ok {
		return id
	}
	id := RelID(len(b.relNames))
	b.relNames = append(b.relNames, name)
	b.relIDs[name] = id
	return id
}

// AddEdge adds a directed edge from -> to with relationship r. Endpoints
// must already exist.
func (b *Builder) AddEdge(from, to NodeID, r RelID) {
	b.from = append(b.from, from)
	b.to = append(b.to, to)
	b.rel = append(b.rel, r)
}

// AddEdgeNamed is AddEdge with a relationship name, interning it on the fly.
func (b *Builder) AddEdgeNamed(from, to NodeID, rel string) {
	b.AddEdge(from, to, b.Rel(rel))
}

// Build constructs the CSR graph. Edges are sorted by (source, destination)
// within each adjacency list so traversal order — and therefore every search
// result in the engine — is deterministic.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.labels)
	m := len(b.from)
	for i := 0; i < m; i++ {
		if int(b.from[i]) >= n || b.from[i] < 0 || int(b.to[i]) >= n || b.to[i] < 0 {
			return nil, fmt.Errorf("graph: edge %d endpoints (%d,%d) out of range [0,%d)", i, b.from[i], b.to[i], n)
		}
	}
	g := &Graph{
		labels:   b.labels,
		descs:    b.descs,
		relNames: b.relNames,
	}
	if g.relNames == nil {
		g.relNames = []string{}
	}
	g.outOff, g.outDst, g.outRel = buildCSR(n, m, b.from, b.to, b.rel)
	g.inOff, g.inSrc, g.inRel = buildCSR(n, m, b.to, b.from, b.rel)
	return g, nil
}

// buildCSR builds one direction of adjacency via counting sort on the key
// endpoint, then sorts each list by (value endpoint, relation).
func buildCSR(n, m int, key, val []NodeID, rel []RelID) ([]int64, []NodeID, []RelID) {
	off := make([]int64, n+1)
	for _, k := range key {
		off[k+1]++
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	dst := make([]NodeID, m)
	rl := make([]RelID, m)
	cursor := make([]int64, n)
	copy(cursor, off[:n])
	for i := 0; i < m; i++ {
		k := key[i]
		p := cursor[k]
		cursor[k]++
		dst[p] = val[i]
		rl[p] = rel[i]
	}
	for v := 0; v < n; v++ {
		lo, hi := off[v], off[v+1]
		seg := adjSeg{dst[lo:hi], rl[lo:hi]}
		sort.Sort(seg)
	}
	return off, dst, rl
}

type adjSeg struct {
	dst []NodeID
	rel []RelID
}

func (s adjSeg) Len() int { return len(s.dst) }
func (s adjSeg) Less(i, j int) bool {
	if s.dst[i] != s.dst[j] {
		return s.dst[i] < s.dst[j]
	}
	return s.rel[i] < s.rel[j]
}
func (s adjSeg) Swap(i, j int) {
	s.dst[i], s.dst[j] = s.dst[j], s.dst[i]
	s.rel[i], s.rel[j] = s.rel[j], s.rel[i]
}

// FromParts assembles a Graph directly from CSR arrays. It is used by the
// storage loader; Validate is the caller's responsibility.
func FromParts(outOff []int64, outDst []NodeID, outRel []RelID,
	inOff []int64, inSrc []NodeID, inRel []RelID,
	labels, descs, relNames []string) *Graph {
	return &Graph{
		outOff: outOff, outDst: outDst, outRel: outRel,
		inOff: inOff, inSrc: inSrc, inRel: inRel,
		labels: labels, descs: descs, relNames: relNames,
	}
}

// Parts returns the underlying CSR arrays for serialization. The slices
// alias internal storage and must not be modified. A derived overlay view
// is materialized first so serialization always sees flat CSR arrays.
func (g *Graph) Parts() (outOff []int64, outDst []NodeID, outRel []RelID,
	inOff []int64, inSrc []NodeID, inRel []RelID,
	labels, descs, relNames []string) {
	if g.ov != nil {
		g = g.Materialize()
	}
	return g.outOff, g.outDst, g.outRel, g.inOff, g.inSrc, g.inRel, g.labels, g.descs, g.relNames
}
