package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistancePath(t *testing.T) {
	g := buildPath(t, 10)
	cases := []struct {
		s, tt NodeID
		want  int
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 9, 9}, {9, 0, 9}, {3, 7, 4},
	}
	for _, c := range cases {
		if got := g.Distance(c.s, c.tt); got != c.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", c.s, c.tt, got, c.want)
		}
	}
}

func TestDistanceUnreachable(t *testing.T) {
	b := NewBuilder()
	b.AddNode("a", "")
	b.AddNode("b", "")
	g, _ := b.Build()
	if got := g.Distance(0, 1); got != -1 {
		t.Fatalf("Distance across components = %d, want -1", got)
	}
}

func TestDistanceMatchesBFSReference(t *testing.T) {
	f := func(seed int64) bool {
		g, _ := randomGraph(t, 40, 70, seed)
		rng := rand.New(rand.NewSource(seed + 1))
		for trial := 0; trial < 10; trial++ {
			s := NodeID(rng.Intn(g.NumNodes()))
			dist := BFSDistances(g, s)
			tt := NodeID(rng.Intn(g.NumNodes()))
			got := g.Distance(s, tt)
			if int32(got) != dist[tt] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	// Bi-directed distance must be symmetric.
	f := func(seed int64) bool {
		g, _ := randomGraph(t, 30, 50, seed)
		rng := rand.New(rand.NewSource(seed ^ 7))
		for trial := 0; trial < 8; trial++ {
			s := NodeID(rng.Intn(g.NumNodes()))
			tt := NodeID(rng.Intn(g.NumNodes()))
			if g.Distance(s, tt) != g.Distance(tt, s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleAverageDistance(t *testing.T) {
	g := buildPath(t, 50)
	s := SampleAverageDistance(g, 500, rand.New(rand.NewSource(1)))
	if s.Reachable != 500 {
		t.Fatalf("Reachable = %d, want 500", s.Reachable)
	}
	// Expected average distance on a path of n nodes is about n/3.
	if s.Mean < 10 || s.Mean > 24 {
		t.Fatalf("Mean = %.2f, outside plausible range for a 50-path", s.Mean)
	}
	if s.Deviation <= 0 {
		t.Fatalf("Deviation = %.2f, want > 0", s.Deviation)
	}
}

func TestSampleAverageDistanceDegenerate(t *testing.T) {
	b := NewBuilder()
	b.AddNode("only", "")
	g, _ := b.Build()
	s := SampleAverageDistance(g, 100, rand.New(rand.NewSource(1)))
	if s.Reachable != 0 || s.Mean != 0 {
		t.Fatalf("degenerate sample = %+v", s)
	}
	s = SampleAverageDistance(buildPath(t, 5), 0, rand.New(rand.NewSource(1)))
	if s.Pairs != 0 || s.Reachable != 0 {
		t.Fatalf("zero-pair sample = %+v", s)
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 6; i++ {
		b.AddNode("n", "")
	}
	r := b.Rel("e")
	b.AddEdge(0, 1, r)
	b.AddEdge(1, 2, r)
	b.AddEdge(3, 4, r)
	g, _ := b.Build()
	comp, k := Components(g)
	if k != 3 {
		t.Fatalf("components = %d, want 3", k)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("0,1,2 should share a component")
	}
	if comp[3] != comp[4] || comp[3] == comp[0] || comp[5] == comp[0] || comp[5] == comp[3] {
		t.Fatal("component labels wrong")
	}
	lc := LargestComponent(g)
	if len(lc) != 3 {
		t.Fatalf("largest component size = %d, want 3", len(lc))
	}
}

func TestBFSDistancesMultiSource(t *testing.T) {
	g := buildPath(t, 9)
	dist := BFSDistances(g, 0, 8)
	want := []int32{0, 1, 2, 3, 4, 3, 2, 1, 0}
	for i, w := range want {
		if dist[i] != w {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], w)
		}
	}
}
