// Package graph implements the knowledge-graph substrate of the paper: a
// bi-directed, node-weighted, node- and edge-labeled graph stored in
// Compressed Sparse Row (CSR) form (§V-A: "We store the graph in Compressed
// Sparse Row (CSR) format and we do not need any node distance index").
//
// Edges are stored directed (Wikidata statements have a direction and the
// degree-of-summary weight of Eq. 2 depends on *in*-edges and their labels),
// but search traverses the graph bi-directed: every edge is usable in both
// directions, which is how the paper "enhances the connection between
// nodes" (§III).
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node. IDs are dense, in [0, NumNodes).
type NodeID = int32

// RelID identifies a relationship (edge label / Wikidata property).
type RelID = int32

// Graph is an immutable CSR knowledge graph. Build one with a Builder or
// load one with the storage package.
type Graph struct {
	// Out-CSR: outOff[v]..outOff[v+1] index into outDst/outRel.
	outOff []int64
	outDst []NodeID
	outRel []RelID
	// In-CSR (reverse adjacency), same layout.
	inOff []int64
	inSrc []NodeID
	inRel []RelID

	labels   []string // node display label (entity name)
	descs    []string // node description text
	relNames []string // relationship type names, indexed by RelID

	// ov, when non-nil, makes this Graph a derived live-mutation view: the
	// overlay's node patches shadow the base arrays above. See overlay.go.
	// Every accessor below pays exactly one nil check for it.
	ov *overlay
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int {
	if g.ov != nil {
		return g.ov.baseN + len(g.ov.added)
	}
	return len(g.outOff) - 1
}

// NumEdges returns the number of stored (directed) edges.
func (g *Graph) NumEdges() int {
	if g.ov != nil {
		return g.ov.edges
	}
	return len(g.outDst)
}

// NumRels returns the number of relationship types.
func (g *Graph) NumRels() int {
	if g.ov != nil {
		return len(g.ov.relNames)
	}
	return len(g.relNames)
}

// Label returns the display label of v.
func (g *Graph) Label(v NodeID) string {
	if g.ov != nil {
		if int(v) >= g.ov.baseN {
			return g.ov.added[int(v)-g.ov.baseN].label
		}
		if p := g.ov.patch[v]; p != nil && p.text {
			return p.label
		}
	}
	return g.labels[v]
}

// Description returns the description text of v (may be empty).
func (g *Graph) Description(v NodeID) string {
	if g.ov != nil {
		if int(v) >= g.ov.baseN {
			return g.ov.added[int(v)-g.ov.baseN].desc
		}
		if p := g.ov.patch[v]; p != nil && p.text {
			return p.desc
		}
	}
	return g.descs[v]
}

// RelName returns the name of relationship type r.
func (g *Graph) RelName(r RelID) string {
	if g.ov != nil {
		return g.ov.relNames[r]
	}
	return g.relNames[r]
}

// OutDegree returns the number of out-edges of v.
func (g *Graph) OutDegree(v NodeID) int {
	if g.ov != nil {
		if p := g.ov.adj(v); p != nil {
			return len(p.outDst)
		}
	}
	return int(g.outOff[v+1] - g.outOff[v])
}

// InDegree returns the number of in-edges of v.
func (g *Graph) InDegree(v NodeID) int {
	if g.ov != nil {
		if p := g.ov.adj(v); p != nil {
			return len(p.inSrc)
		}
	}
	return int(g.inOff[v+1] - g.inOff[v])
}

// Degree returns the bi-directed degree of v (out + in).
func (g *Graph) Degree(v NodeID) int { return g.OutDegree(v) + g.InDegree(v) }

// OutEdges returns the out-neighbor and relation slices of v. The returned
// slices alias internal storage and must not be modified.
func (g *Graph) OutEdges(v NodeID) ([]NodeID, []RelID) {
	if g.ov != nil {
		if p := g.ov.adj(v); p != nil {
			return p.outDst, p.outRel
		}
	}
	lo, hi := g.outOff[v], g.outOff[v+1]
	return g.outDst[lo:hi], g.outRel[lo:hi]
}

// InEdges returns the in-neighbor (source) and relation slices of v. The
// returned slices alias internal storage and must not be modified.
func (g *Graph) InEdges(v NodeID) ([]NodeID, []RelID) {
	if g.ov != nil {
		if p := g.ov.adj(v); p != nil {
			return p.inSrc, p.inRel
		}
	}
	lo, hi := g.inOff[v], g.inOff[v+1]
	return g.inSrc[lo:hi], g.inRel[lo:hi]
}

// OutNeighbors returns v's out-neighbor slice without the relation labels —
// the expansion kernel iterates raw CSR adjacency and does not need labels.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) OutNeighbors(v NodeID) []NodeID {
	if g.ov != nil {
		if p := g.ov.adj(v); p != nil {
			return p.outDst
		}
	}
	return g.outDst[g.outOff[v]:g.outOff[v+1]]
}

// InNeighbors returns v's in-neighbor (source) slice without the relation
// labels. The returned slice aliases internal storage and must not be
// modified.
func (g *Graph) InNeighbors(v NodeID) []NodeID {
	if g.ov != nil {
		if p := g.ov.adj(v); p != nil {
			return p.inSrc
		}
	}
	return g.inSrc[g.inOff[v]:g.inOff[v+1]]
}

// ForEachNeighbor calls fn for every bi-directed neighbor of v: first the
// out-edges (out=true), then the in-edges (out=false). This is the traversal
// order used by every BFS in the engine, so results are deterministic.
func (g *Graph) ForEachNeighbor(v NodeID, fn func(n NodeID, rel RelID, out bool)) {
	dst, rel := g.OutEdges(v)
	for i, n := range dst {
		fn(n, rel[i], true)
	}
	src, rel2 := g.InEdges(v)
	for i, n := range src {
		fn(n, rel2[i], false)
	}
}

// Neighbor returns the j-th bi-directed neighbor of v (out-edges first,
// then in-edges), its relation, and whether it is an out-edge. It lets
// SIMT-style kernels stride over a node's adjacency by lane index; j must
// be in [0, Degree(v)).
func (g *Graph) Neighbor(v NodeID, j int) (NodeID, RelID, bool) {
	if g.ov != nil {
		if p := g.ov.adj(v); p != nil {
			if j < len(p.outDst) {
				return p.outDst[j], p.outRel[j], true
			}
			j -= len(p.outDst)
			return p.inSrc[j], p.inRel[j], false
		}
	}
	lo, hi := g.outOff[v], g.outOff[v+1]
	if int64(j) < hi-lo {
		return g.outDst[lo+int64(j)], g.outRel[lo+int64(j)], true
	}
	j -= int(hi - lo)
	lo = g.inOff[v]
	return g.inSrc[lo+int64(j)], g.inRel[lo+int64(j)], false
}

// HasEdge reports whether a directed edge (from, to) exists with any label.
// Neighbor lists are sorted by destination, so this is a binary search.
func (g *Graph) HasEdge(from, to NodeID) bool {
	dst, _ := g.OutEdges(from)
	i := sort.Search(len(dst), func(i int) bool { return dst[i] >= to })
	return i < len(dst) && dst[i] == to
}

// Validate checks internal CSR invariants. It is used by tests and by the
// storage loader to reject corrupt files. A derived overlay view is
// materialized first, so the same invariants hold for mutated graphs.
func (g *Graph) Validate() error {
	if g.ov != nil {
		return g.Materialize().Validate()
	}
	n := g.NumNodes()
	if n < 0 {
		return fmt.Errorf("graph: negative node count")
	}
	if len(g.labels) != n || len(g.descs) != n {
		return fmt.Errorf("graph: label/desc arrays sized %d/%d, want %d", len(g.labels), len(g.descs), n)
	}
	if len(g.inOff) != n+1 {
		return fmt.Errorf("graph: inOff len %d, want %d", len(g.inOff), n+1)
	}
	if len(g.outDst) != len(g.outRel) || len(g.inSrc) != len(g.inRel) {
		return fmt.Errorf("graph: dst/rel length mismatch")
	}
	if len(g.outDst) != len(g.inSrc) {
		return fmt.Errorf("graph: out edges %d != in edges %d", len(g.outDst), len(g.inSrc))
	}
	if g.outOff[0] != 0 || g.inOff[0] != 0 {
		return fmt.Errorf("graph: offsets must start at 0")
	}
	if g.outOff[n] != int64(len(g.outDst)) || g.inOff[n] != int64(len(g.inSrc)) {
		return fmt.Errorf("graph: final offset mismatch")
	}
	for v := 0; v < n; v++ {
		if g.outOff[v] > g.outOff[v+1] || g.inOff[v] > g.inOff[v+1] {
			return fmt.Errorf("graph: non-monotone offsets at node %d", v)
		}
	}
	nr := int32(len(g.relNames))
	check := func(ids []NodeID, rels []RelID) error {
		for i, d := range ids {
			if d < 0 || int(d) >= n {
				return fmt.Errorf("graph: edge endpoint %d out of range", d)
			}
			if rels[i] < 0 || rels[i] >= nr {
				return fmt.Errorf("graph: relation id %d out of range", rels[i])
			}
		}
		return nil
	}
	if err := check(g.outDst, g.outRel); err != nil {
		return err
	}
	return check(g.inSrc, g.inRel)
}
