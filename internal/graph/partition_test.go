package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomPartGraph builds a random directed multigraph with locality: most
// edges connect ids within a window, a fraction jump anywhere — the shape
// the streaming partitioner is designed for.
func randomPartGraph(t *testing.T, seed int64, n, m int) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(fmt.Sprintf("n%d", i), "")
	}
	rels := []RelID{b.Rel("r0"), b.Rel("r1"), b.Rel("r2")}
	window := n/8 + 2
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		var w int
		if rng.Intn(10) < 8 {
			w = (u + 1 + rng.Intn(window)) % n
		} else {
			w = rng.Intn(n)
		}
		b.AddEdge(NodeID(u), NodeID(w), rels[rng.Intn(len(rels))])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return g
}

func TestPartitionBalanceBound(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8} {
		for seed := int64(1); seed <= 4; seed++ {
			g := randomPartGraph(t, seed, 100+int(seed)*37, 400)
			p, err := PartitionGraph(g, k)
			if err != nil {
				t.Fatalf("k=%d seed=%d: %v", k, seed, err)
			}
			n := g.NumNodes()
			capacity := PartitionCapacity(n, k)
			total := 0
			for s, sh := range p.Shards {
				if sh.Owned > capacity {
					t.Errorf("k=%d seed=%d shard %d owns %d > capacity %d", k, seed, s, sh.Owned, capacity)
				}
				total += sh.Owned
			}
			if total != n {
				t.Fatalf("k=%d seed=%d: shards own %d nodes, graph has %d", k, seed, total, n)
			}
			for v := 0; v < n; v++ {
				s := p.Owner[v]
				if s < 0 || int(s) >= k {
					t.Fatalf("node %d owner %d out of range", v, s)
				}
				sh := p.Shards[s]
				lo := p.OwnerLocal[v]
				if int(lo) >= sh.Owned || sh.L2G[lo] != NodeID(v) || sh.G2L[v] != lo {
					t.Fatalf("node %d: owner-local mapping broken", v)
				}
			}
		}
	}
}

func TestPartitionSubgraphsValidAndDegreePreserving(t *testing.T) {
	g := randomPartGraph(t, 7, 150, 600)
	for _, k := range []int{1, 2, 4, 8} {
		p, err := PartitionGraph(g, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		included := 0
		for s, sh := range p.Shards {
			if err := sh.G.Validate(); err != nil {
				t.Fatalf("k=%d shard %d invalid: %v", k, s, err)
			}
			included += sh.G.NumEdges()
			// Owned nodes keep their exact global degree (every incident
			// edge is present, in both CSR directions).
			for li := 0; li < sh.Owned; li++ {
				gid := sh.L2G[li]
				if got, want := sh.G.OutDegree(NodeID(li)), g.OutDegree(gid); got != want {
					t.Fatalf("k=%d shard %d node %d out-degree %d, global %d", k, s, gid, got, want)
				}
				if got, want := sh.G.InDegree(NodeID(li)), g.InDegree(gid); got != want {
					t.Fatalf("k=%d shard %d node %d in-degree %d, global %d", k, s, gid, got, want)
				}
				if sh.G.Label(NodeID(li)) != g.Label(gid) {
					t.Fatalf("k=%d shard %d node %d label mismatch", k, s, gid)
				}
			}
			// Local bands ascend by global id.
			for li := 1; li < sh.Owned; li++ {
				if sh.L2G[li] <= sh.L2G[li-1] {
					t.Fatalf("owned band not ascending at %d", li)
				}
			}
			for li := sh.Owned + 1; li < len(sh.L2G); li++ {
				if sh.L2G[li] <= sh.L2G[li-1] {
					t.Fatalf("ghost band not ascending at %d", li)
				}
			}
		}
		// Each directed edge appears once per incident shard: interior edges
		// once, cut edges twice.
		if want := g.NumEdges() + p.CutEdges; included != want {
			t.Fatalf("k=%d: shards hold %d edges, want %d (%d global + %d cut)", k, included, want, g.NumEdges(), p.CutEdges)
		}
	}
}

// TestPartitionEdgeCutQuality pins the partitioner's reason to exist: on a
// graph with locality it must cut far fewer edges than a hash partition
// would in expectation ((k−1)/k of them).
func TestPartitionEdgeCutQuality(t *testing.T) {
	g := randomPartGraph(t, 11, 400, 2000)
	for _, k := range []int{2, 4} {
		p, err := PartitionGraph(g, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		hashCut := float64(g.NumEdges()) * float64(k-1) / float64(k)
		if float64(p.CutEdges) > 0.7*hashCut {
			t.Errorf("k=%d: cut %d edges of %d; want well under the hash-partition expectation %.0f",
				k, p.CutEdges, g.NumEdges(), hashCut)
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := randomPartGraph(t, 3, 120, 500)
	a, err := PartitionGraph(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartitionGraph(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Owner {
		if a.Owner[v] != b.Owner[v] || a.OwnerLocal[v] != b.OwnerLocal[v] {
			t.Fatalf("node %d assigned differently across runs", v)
		}
	}
	if a.CutEdges != b.CutEdges {
		t.Fatalf("cut edges differ: %d vs %d", a.CutEdges, b.CutEdges)
	}
}

func TestPartitionSingleShardIsIdentity(t *testing.T) {
	g := randomPartGraph(t, 5, 80, 300)
	p, err := PartitionGraph(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	sh := p.Shards[0]
	if sh.Owned != g.NumNodes() || sh.Ghosts() != 0 {
		t.Fatalf("single shard owns %d nodes with %d ghosts; want %d/0", sh.Owned, sh.Ghosts(), g.NumNodes())
	}
	if sh.G.NumEdges() != g.NumEdges() {
		t.Fatalf("single shard has %d edges, graph %d", sh.G.NumEdges(), g.NumEdges())
	}
	for v := 0; v < g.NumNodes(); v++ {
		a, ar := g.OutEdges(NodeID(v))
		b, br := sh.G.OutEdges(NodeID(v))
		if len(a) != len(b) {
			t.Fatalf("node %d adjacency length differs", v)
		}
		for i := range a {
			if a[i] != b[i] || ar[i] != br[i] {
				t.Fatalf("node %d adjacency differs at %d", v, i)
			}
		}
	}
}
