package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchGraph(b *testing.B, n, m int) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	gb := NewBuilder()
	for i := 0; i < n; i++ {
		gb.AddNode(fmt.Sprintf("n%d", i), "")
	}
	r := gb.Rel("e")
	for i := 0; i < m; i++ {
		gb.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), r)
	}
	g, err := gb.Build()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkBuildCSR(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	const n, m = 10000, 60000
	from := make([]NodeID, m)
	to := make([]NodeID, m)
	for i := range from {
		from[i] = NodeID(rng.Intn(n))
		to[i] = NodeID(rng.Intn(n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gb := NewBuilder()
		for j := 0; j < n; j++ {
			gb.AddNode("x", "")
		}
		r := gb.Rel("e")
		for j := 0; j < m; j++ {
			gb.AddEdge(from[j], to[j], r)
		}
		if _, err := gb.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForEachNeighbor(b *testing.B) {
	g := benchGraph(b, 10000, 80000)
	var sink int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := NodeID(i % g.NumNodes())
		g.ForEachNeighbor(v, func(n NodeID, _ RelID, _ bool) { sink += int64(n) })
	}
	_ = sink
}

func BenchmarkBidirectionalDistance(b *testing.B) {
	g := benchGraph(b, 20000, 160000)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NodeID(rng.Intn(g.NumNodes()))
		t := NodeID(rng.Intn(g.NumNodes()))
		_ = g.Distance(s, t)
	}
}
