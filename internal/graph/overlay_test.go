package graph

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// relVocab is pre-interned in fixed order on every build path so RelIDs are
// comparable across the delta and fresh-build graphs.
var relVocab = []string{"next", "linked to", "part of", "instance of", "near"}

// graphFingerprint captures everything a traversal can observe: node text,
// relation table, and per-node bi-directed adjacency in iteration order.
func graphFingerprint(t *testing.T, g *Graph) string {
	t.Helper()
	s := fmt.Sprintf("n=%d m=%d r=%d\n", g.NumNodes(), g.NumEdges(), g.NumRels())
	for r := int32(0); int(r) < g.NumRels(); r++ {
		s += fmt.Sprintf("rel %d=%s\n", r, g.RelName(r))
	}
	for v := 0; v < g.NumNodes(); v++ {
		s += fmt.Sprintf("v%d %q %q deg=%d/%d:", v, g.Label(NodeID(v)), g.Description(NodeID(v)),
			g.OutDegree(NodeID(v)), g.InDegree(NodeID(v)))
		g.ForEachNeighbor(NodeID(v), func(n NodeID, rel RelID, out bool) {
			s += fmt.Sprintf(" (%d,%d,%v)", n, rel, out)
		})
		s += "\n"
	}
	return s
}

// op is one recorded mutation, replayable against both a DeltaBuilder and a
// fresh Builder.
type op struct {
	kind        string // add_node, add_edge, remove_edge, set_text
	label, desc string
	from, to    NodeID
	rel         string
}

// finalGraph replays the whole op stream into a fresh Builder: final text
// per node, surviving edge multiset in insertion order.
func finalGraph(t *testing.T, ops []op) *Graph {
	t.Helper()
	type edge struct {
		from, to NodeID
		rel      string
	}
	var labels, descs []string
	var edges []edge
	for _, o := range ops {
		switch o.kind {
		case "add_node":
			labels = append(labels, o.label)
			descs = append(descs, o.desc)
		case "add_edge":
			edges = append(edges, edge{o.from, o.to, o.rel})
		case "remove_edge":
			for i, e := range edges {
				if e.from == o.from && e.to == o.to && e.rel == o.rel {
					edges = append(edges[:i], edges[i+1:]...)
					break
				}
			}
		case "set_text":
			labels[o.from] = o.label
			descs[o.from] = o.desc
		}
	}
	b := NewBuilder()
	for _, r := range relVocab {
		b.Rel(r)
	}
	for i := range labels {
		b.AddNode(labels[i], descs[i])
	}
	for _, e := range edges {
		b.AddEdgeNamed(e.from, e.to, e.rel)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randomOps emits n random mutations valid for a graph that currently has
// `nodes` nodes and the live edges accumulated in the stream so far.
func randomOps(rng *rand.Rand, stream []op, n int) []op {
	type edge struct {
		from, to NodeID
		rel      string
	}
	var live []edge
	nodes := 0
	for _, o := range stream {
		switch o.kind {
		case "add_node":
			nodes++
		case "add_edge":
			live = append(live, edge{o.from, o.to, o.rel})
		case "remove_edge":
			for i, e := range live {
				if e.from == o.from && e.to == o.to && e.rel == o.rel {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
		}
	}
	var ops []op
	for i := 0; i < n; i++ {
		switch k := rng.Intn(10); {
		case k < 2:
			ops = append(ops, op{kind: "add_node",
				label: fmt.Sprintf("node %d extra", nodes), desc: fmt.Sprintf("desc %d", nodes)})
			nodes++
		case k < 7 || len(live) == 0:
			e := edge{NodeID(rng.Intn(nodes)), NodeID(rng.Intn(nodes)), relVocab[rng.Intn(len(relVocab))]}
			ops = append(ops, op{kind: "add_edge", from: e.from, to: e.to, rel: e.rel})
			live = append(live, e)
		case k < 9:
			j := rng.Intn(len(live))
			e := live[j]
			live = append(live[:j], live[j+1:]...)
			ops = append(ops, op{kind: "remove_edge", from: e.from, to: e.to, rel: e.rel})
		default:
			v := NodeID(rng.Intn(nodes))
			ops = append(ops, op{kind: "set_text", from: v,
				label: fmt.Sprintf("relabel %d round %d", v, i), desc: fmt.Sprintf("redesc %d", i)})
		}
	}
	return ops
}

func applyToDelta(t *testing.T, d *DeltaBuilder, ops []op) {
	t.Helper()
	for _, o := range ops {
		var err error
		switch o.kind {
		case "add_node":
			d.AddNode(o.label, o.desc)
		case "add_edge":
			err = d.AddEdge(o.from, o.to, d.Rel(o.rel))
		case "remove_edge":
			err = d.RemoveEdge(o.from, o.to, d.Rel(o.rel))
		case "set_text":
			err = d.SetText(o.from, o.label, o.desc)
		}
		if err != nil {
			t.Fatalf("%s(%d,%d,%s): %v", o.kind, o.from, o.to, o.rel, err)
		}
	}
}

// TestOverlayEquivalence replays random mutation streams against a
// DeltaBuilder (overlay view + Materialize) and a fresh Builder on the final
// graph, and requires identical observable graphs.
func TestOverlayEquivalence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			baseN := 5 + rng.Intn(10)
			var stream []op
			for i := 0; i < baseN; i++ {
				stream = append(stream, op{kind: "add_node",
					label: fmt.Sprintf("node %d", i), desc: fmt.Sprintf("base desc %d", i)})
			}
			baseEdges := randomOps(rng, stream, 3*baseN)
			stream = append(stream, baseEdges...)
			base := finalGraph(t, stream)

			d := NewDeltaBuilder(base)
			deltaOps := randomOps(rng, stream, 4*baseN)
			stream = append(stream, deltaOps...)
			applyToDelta(t, d, deltaOps)

			view := d.Overlay()
			flat := view.Materialize()
			fresh := finalGraph(t, stream)

			if err := view.Validate(); err != nil {
				t.Fatalf("overlay view invalid: %v", err)
			}
			fpView := graphFingerprint(t, view)
			fpFlat := graphFingerprint(t, flat)
			fpFresh := graphFingerprint(t, fresh)
			if fpView != fpFresh {
				t.Errorf("overlay view differs from fresh build:\n--- view ---\n%s--- fresh ---\n%s", fpView, fpFresh)
			}
			if fpFlat != fpFresh {
				t.Errorf("materialized differs from fresh build:\n--- flat ---\n%s--- fresh ---\n%s", fpFlat, fpFresh)
			}
			if flat.HasOverlay() {
				t.Error("Materialize returned a graph still carrying an overlay")
			}
			added, patched, edgeDelta := view.DeltaStats()
			wantEdgeDelta := fresh.NumEdges() - base.NumEdges()
			if edgeDelta != wantEdgeDelta {
				t.Errorf("DeltaStats edgeDelta = %d, want %d", edgeDelta, wantEdgeDelta)
			}
			if added != fresh.NumNodes()-base.NumNodes() {
				t.Errorf("DeltaStats added = %d, want %d", added, fresh.NumNodes()-base.NumNodes())
			}
			_ = patched
		})
	}
}

// TestOverlayIsolation checks that views handed out by Overlay are immune to
// later builder mutations, and that an untouched builder returns the base.
func TestOverlayIsolation(t *testing.T) {
	base := buildPath(t, 6)
	d := NewDeltaBuilder(base)
	if d.Overlay() != base {
		t.Fatal("empty builder should hand back the base graph")
	}
	r := d.Rel("next")
	if err := d.AddEdge(0, 5, r); err != nil {
		t.Fatal(err)
	}
	v1 := d.Overlay()
	fp1 := graphFingerprint(t, v1)
	if err := d.AddEdge(5, 0, r); err != nil {
		t.Fatal(err)
	}
	if err := d.SetText(0, "mutated", "changed"); err != nil {
		t.Fatal(err)
	}
	d.AddNode("seven", "new node")
	if got := graphFingerprint(t, v1); got != fp1 {
		t.Errorf("published view changed after later mutations:\nbefore:\n%s\nafter:\n%s", fp1, got)
	}
	v2 := d.Overlay()
	if v2.NumNodes() != 7 || v2.Label(0) != "mutated" {
		t.Fatalf("second view stale: n=%d label0=%q", v2.NumNodes(), v2.Label(0))
	}
	if base.HasOverlay() || base.NumNodes() != 6 {
		t.Fatal("base graph mutated")
	}
}

// TestOverlayRemoveEdgeErrors pins the error behavior of RemoveEdge.
func TestOverlayRemoveEdgeErrors(t *testing.T) {
	base := buildPath(t, 3)
	d := NewDeltaBuilder(base)
	r := d.Rel("next")
	if err := d.RemoveEdge(0, 2, r); err == nil {
		t.Fatal("expected error removing missing edge")
	}
	if err := d.RemoveEdge(0, 1, r); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveEdge(0, 1, r); err == nil {
		t.Fatal("expected error removing edge twice")
	}
	if d.NumEdges() != base.NumEdges()-1 {
		t.Fatalf("edges = %d, want %d", d.NumEdges(), base.NumEdges()-1)
	}
	if err := d.AddEdge(0, 99, r); err == nil {
		t.Fatal("expected range error")
	}
}

// TestOverlayPartsMaterializes checks Parts on a derived view returns flat
// arrays equal to the materialized graph's.
func TestOverlayPartsMaterializes(t *testing.T) {
	base := buildPath(t, 4)
	d := NewDeltaBuilder(base)
	d.AddNode("four", "tail")
	if err := d.AddEdge(3, 4, d.Rel("next")); err != nil {
		t.Fatal(err)
	}
	view := d.Overlay()
	oo, od, orl, io, is, ir, lb, ds, rn := view.Parts()
	mo, md, mrl, mi, ms, mr, mlb, mds, mrn := view.Materialize().Parts()
	for i, pair := range []struct{ a, b any }{
		{oo, mo}, {od, md}, {orl, mrl}, {io, mi}, {is, ms}, {ir, mr}, {lb, mlb}, {ds, mds}, {rn, mrn},
	} {
		if !reflect.DeepEqual(pair.a, pair.b) {
			t.Fatalf("Parts() component %d differs from materialized", i)
		}
	}
}
