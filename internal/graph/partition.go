package graph

import (
	"fmt"
	"math"
	"sort"
)

// Shard is one edge-cut partition of a Graph, materialized as its own CSR
// subgraph so the search kernel can run on it unmodified. Local node ids are
// laid out in two contiguous bands, both ascending by global id:
//
//	[0, Owned)            nodes owned by this shard
//	[Owned, G.NumNodes()) ghost copies of remote endpoints of cut edges
//
// The subgraph contains every global edge with at least one owned endpoint,
// mirrored in both CSR directions exactly like the global graph, so an owned
// node's local degree equals its global degree and the kernel's edge-scan
// accounting stays comparable. Ghost nodes carry only their cut edges and are
// never expanded — they exist so expansion can hit them locally and the
// coordinator can forward the activation to the owner.
type Shard struct {
	G     *Graph
	Owned int      // locals [0, Owned) are owned; the rest are ghosts
	L2G   []NodeID // local id -> global id, len G.NumNodes()
	G2L   []int32  // global id -> local id, -1 when absent from this shard
	Edges int      // directed global edges included in this shard
}

// Ghosts returns the number of ghost nodes in the shard.
func (s *Shard) Ghosts() int { return s.G.NumNodes() - s.Owned }

// Partition is an edge-cut decomposition of a Graph into K shards. Every
// global node is owned by exactly one shard; OwnerLocal gives its local id
// there, so boundary activations route in O(1).
type Partition struct {
	K          int
	Owner      []int32 // global id -> owning shard
	OwnerLocal []int32 // global id -> local id within the owning shard
	Shards     []*Shard
	// CutEdges counts directed global edges whose endpoints live on
	// different shards (each such edge is replicated into both).
	CutEdges int
}

// ldgCapacity is the slack factor of the partitioner's balance bound: no
// shard owns more than ceil(slack·n/k) nodes.
const ldgSlack = 1.1

// PartitionCapacity returns the per-shard ownership bound the partitioner
// enforces for n nodes over k shards: ceil(slack·n/k).
func PartitionCapacity(n, k int) int {
	return int(math.Ceil(ldgSlack * float64(n) / float64(k)))
}

// PartitionGraph splits g into k edge-cut shards with a greedy streaming
// partitioner (linear deterministic greedy, Stanton & Kliot): nodes stream in
// id order and each lands on the shard maximizing
//
//	|N(v) ∩ S_j| · (1 − |S_j|/C)
//
// with capacity C = PartitionCapacity(n, k) — neighbor affinity damped by
// fill, which keeps shards balanced while preferring low edge cuts. Ties
// break to the lowest shard id and isolated nodes go to the least-loaded
// shard, so the partition is deterministic. The per-shard subgraphs are
// assembled with the same sorted-CSR builder as the global graph.
func PartitionGraph(g *Graph, k int) (*Partition, error) {
	n := g.NumNodes()
	if k < 1 {
		return nil, fmt.Errorf("graph: partition into %d shards", k)
	}
	if k > n {
		return nil, fmt.Errorf("graph: %d shards exceed %d nodes", k, n)
	}
	p := &Partition{
		K:          k,
		Owner:      make([]int32, n),
		OwnerLocal: make([]int32, n),
		Shards:     make([]*Shard, k),
	}
	capacity := PartitionCapacity(n, k)
	capf := float64(capacity)
	size := make([]int, k)
	cnt := make([]int, k) // assigned-neighbor count per shard (reset via touched)
	touched := make([]int32, 0, k)
	for v := 0; v < n; v++ {
		touched = touched[:0]
		vid := NodeID(v)
		count := func(u NodeID) {
			if int(u) >= v || u == vid {
				return // only already-assigned neighbors vote
			}
			s := p.Owner[u]
			if cnt[s] == 0 {
				touched = append(touched, s)
			}
			cnt[s]++
		}
		for _, u := range g.OutNeighbors(vid) {
			count(u)
		}
		for _, u := range g.InNeighbors(vid) {
			count(u)
		}
		best, bestScore := -1, 0.0
		for _, s := range touched {
			if size[s] >= capacity {
				cnt[s] = 0
				continue
			}
			score := float64(cnt[s]) * (1 - float64(size[s])/capf)
			if best == -1 || score > bestScore || (score == bestScore && int(s) < best) {
				best, bestScore = int(s), score
			}
			cnt[s] = 0
		}
		if best == -1 {
			// No assigned neighbor (or all their shards full): least loaded,
			// lowest id.
			for s := 0; s < k; s++ {
				if best == -1 || size[s] < size[best] {
					best = s
				}
			}
		}
		p.Owner[v] = int32(best)
		p.OwnerLocal[v] = int32(size[best])
		size[best]++
	}
	p.buildShards(g)
	return p, nil
}

// buildShards materializes the per-shard CSR subgraphs from the ownership
// vector.
func (p *Partition) buildShards(g *Graph) {
	n := g.NumNodes()
	k := p.K
	// Collect each shard's ghost candidates (remote endpoints of its cut
	// edges) and count its edges.
	ghosts := make([][]NodeID, k)
	edges := make([]int, k)
	for u := 0; u < n; u++ {
		su := p.Owner[u]
		for _, w := range g.OutNeighbors(NodeID(u)) {
			sw := p.Owner[w]
			edges[su]++
			if sw != su {
				p.CutEdges++
				edges[sw]++
				ghosts[su] = append(ghosts[su], w)
				ghosts[sw] = append(ghosts[sw], NodeID(u))
			}
		}
	}
	for s := 0; s < k; s++ {
		gl := ghosts[s]
		sort.Slice(gl, func(i, j int) bool { return gl[i] < gl[j] })
		ghosts[s] = dedupNodeIDs(gl)
	}
	// Lay out local id spaces: owned ascending, then ghosts ascending.
	for s := 0; s < k; s++ {
		sh := &Shard{G2L: make([]int32, n), Edges: edges[s]}
		for i := range sh.G2L {
			sh.G2L[i] = -1
		}
		p.Shards[s] = sh
	}
	for v := 0; v < n; v++ {
		sh := p.Shards[p.Owner[v]]
		sh.G2L[v] = int32(len(sh.L2G))
		sh.L2G = append(sh.L2G, NodeID(v))
	}
	for s := 0; s < k; s++ {
		sh := p.Shards[s]
		sh.Owned = len(sh.L2G)
		for _, gid := range ghosts[s] {
			sh.G2L[gid] = int32(len(sh.L2G))
			sh.L2G = append(sh.L2G, gid)
		}
	}
	// Build each shard's CSR with the global relation table interned in
	// order, so shard RelIDs equal global RelIDs.
	_, _, _, _, _, _, _, _, relNames := g.Parts()
	for s := 0; s < k; s++ {
		sh := p.Shards[s]
		b := NewBuilder()
		for _, lg := range sh.L2G {
			b.AddNode(g.Label(lg), g.Description(lg))
		}
		for _, name := range relNames {
			b.Rel(name)
		}
		for li := 0; li < sh.Owned; li++ {
			gid := sh.L2G[li]
			dsts, rels := g.OutEdges(gid)
			for j, w := range dsts {
				b.AddEdge(NodeID(li), NodeID(sh.G2L[w]), rels[j])
			}
		}
		// Cut edges arriving at owned nodes from remote sources (the
		// owned-source loop above already covered local ones).
		for li := 0; li < sh.Owned; li++ {
			gid := sh.L2G[li]
			srcs, rels := g.InEdges(gid)
			for j, u := range srcs {
				if p.Owner[u] != int32(s) {
					b.AddEdge(NodeID(sh.G2L[u]), NodeID(li), rels[j])
				}
			}
		}
		built, err := b.Build()
		if err != nil {
			// Every endpoint is a member of the shard by construction.
			panic(fmt.Sprintf("graph: shard %d build: %v", s, err))
		}
		sh.G = built
	}
}

// dedupNodeIDs compacts a sorted slice in place.
func dedupNodeIDs(s []NodeID) []NodeID {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
