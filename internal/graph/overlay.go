package graph

import (
	"fmt"
	"slices"
	"sort"
)

// This file implements live-mutation support for the otherwise immutable CSR
// Graph: a node-granular copy-on-write overlay. A mutated graph is the base
// CSR plus an overlay holding, for each touched node, a complete replacement
// adjacency list (kept sorted by (endpoint, rel) exactly like Builder.Build
// produces, so traversal order — and therefore every search answer — matches
// a fresh build of the same graph). Nodes appended past the base node count
// live entirely in the overlay.
//
// Every Graph accessor consults the overlay behind a single nil check, so
// the search kernels, the weight computation and the exact baselines become
// delta-aware without any kernel changes, and a graph with no overlay pays
// one predictable branch per call.

// nodePatch is the overlay state of one node. For base nodes, adjacency is
// only overridden when adj is true (a pure SetText patch leaves the CSR
// adjacency visible); appended nodes always carry their adjacency here.
type nodePatch struct {
	outDst []NodeID
	outRel []RelID
	inSrc  []NodeID
	inRel  []RelID
	adj    bool // adjacency lists above replace the base CSR lists

	label string
	desc  string
	text  bool // label/desc above replace the base text
}

// overlay is the immutable delta a derived Graph carries. It is built by
// DeltaBuilder.Overlay and never modified afterwards; concurrent readers
// need no synchronization.
type overlay struct {
	baseN    int                   // node count of the base CSR
	patch    map[NodeID]*nodePatch // touched base nodes
	added    []*nodePatch          // nodes with id >= baseN, indexed by id-baseN
	relNames []string              // full relation table (base prefix + new)
	edges    int                   // directed edge count of the overlaid graph
}

// adj returns the adjacency patch for v, or nil when v still reads from the
// base CSR. It must stay allocation-free: it runs inside the hot expansion
// kernels whenever an overlay is installed.
func (o *overlay) adj(v NodeID) *nodePatch {
	if int(v) >= o.baseN {
		return o.added[int(v)-o.baseN]
	}
	if p := o.patch[v]; p != nil && p.adj {
		return p
	}
	return nil
}

// WithOverlay is used by DeltaBuilder.Overlay to derive a mutated view; the
// returned Graph shares the base arrays and must be treated as immutable.
func withOverlay(base *Graph, ov *overlay) *Graph {
	d := *base
	d.ov = ov
	return &d
}

// HasOverlay reports whether g is a derived view carrying unmerged deltas.
func (g *Graph) HasOverlay() bool { return g.ov != nil }

// DeltaStats returns the overlay footprint: nodes appended past the base,
// base nodes with patched adjacency or text, and the signed directed-edge
// delta versus the base CSR. All zeros when g has no overlay.
func (g *Graph) DeltaStats() (addedNodes, patchedNodes, edgeDelta int) {
	if g.ov == nil {
		return 0, 0, 0
	}
	return len(g.ov.added), len(g.ov.patch), g.ov.edges - len(g.outDst)
}

// Materialize folds the overlay into a fresh flat CSR graph. Per-node lists
// are copied in effective order, which Builder-style (endpoint, rel) sorting
// already holds, so the result is answer-identical to a fresh Build of the
// same node/edge multiset. Without an overlay it returns g unchanged.
func (g *Graph) Materialize() *Graph {
	if g.ov == nil {
		return g
	}
	n := g.NumNodes()
	out := &Graph{
		outOff:   make([]int64, n+1),
		inOff:    make([]int64, n+1),
		labels:   make([]string, n),
		descs:    make([]string, n),
		relNames: slices.Clone(g.ov.relNames),
	}
	for v := 0; v < n; v++ {
		out.outOff[v+1] = out.outOff[v] + int64(g.OutDegree(NodeID(v)))
		out.inOff[v+1] = out.inOff[v] + int64(g.InDegree(NodeID(v)))
		out.labels[v] = g.Label(NodeID(v))
		out.descs[v] = g.Description(NodeID(v))
	}
	m := out.outOff[n]
	out.outDst = make([]NodeID, m)
	out.outRel = make([]RelID, m)
	out.inSrc = make([]NodeID, out.inOff[n])
	out.inRel = make([]RelID, out.inOff[n])
	for v := 0; v < n; v++ {
		dst, rel := g.OutEdges(NodeID(v))
		copy(out.outDst[out.outOff[v]:], dst)
		copy(out.outRel[out.outOff[v]:], rel)
		src, rel2 := g.InEdges(NodeID(v))
		copy(out.inSrc[out.inOff[v]:], src)
		copy(out.inRel[out.inOff[v]:], rel2)
	}
	return out
}

// DeltaBuilder accumulates live mutations against a flat base Graph and
// derives immutable overlay views for publication. It is the single-writer
// side of the epoch machinery: not safe for concurrent use, and the views it
// hands out share nothing mutable with it (Overlay deep-copies the touched
// state). The builder is cumulative — it is rooted at the last compacted
// base and every Overlay call re-derives the full delta — so publishing is
// idempotent and a crash between publishes loses nothing but the tail.
type DeltaBuilder struct {
	base     *Graph
	baseN    int
	patch    map[NodeID]*nodePatch
	added    []*nodePatch
	relNames []string
	relIDs   map[string]RelID
	edges    int
	ops      int
}

// NewDeltaBuilder returns a builder rooted at base. A base that itself
// carries an overlay is materialized first so patches copy flat CSR rows.
func NewDeltaBuilder(base *Graph) *DeltaBuilder {
	base = base.Materialize()
	d := &DeltaBuilder{
		base:     base,
		baseN:    base.NumNodes(),
		patch:    make(map[NodeID]*nodePatch),
		relNames: slices.Clone(base.relNames),
		relIDs:   make(map[string]RelID, base.NumRels()),
		edges:    base.NumEdges(),
	}
	for i, name := range d.relNames {
		d.relIDs[name] = RelID(i)
	}
	return d
}

// Base returns the flat graph the builder is rooted at.
func (d *DeltaBuilder) Base() *Graph { return d.base }

// NumNodes returns the node count of the mutated graph.
func (d *DeltaBuilder) NumNodes() int { return d.baseN + len(d.added) }

// NumEdges returns the directed edge count of the mutated graph.
func (d *DeltaBuilder) NumEdges() int { return d.edges }

// Empty reports whether no mutations have been recorded.
func (d *DeltaBuilder) Empty() bool { return d.ops == 0 }

// Ops returns the number of mutations recorded since the builder was rooted.
func (d *DeltaBuilder) Ops() int { return d.ops }

// Stats mirrors Graph.DeltaStats for the pending (unpublished) delta.
func (d *DeltaBuilder) Stats() (addedNodes, patchedNodes, edgeDelta int) {
	return len(d.added), len(d.patch), d.edges - d.base.NumEdges()
}

// AddNode appends a node and returns its id. Ids are dense: the first added
// node gets base.NumNodes(), matching a fresh Builder replaying the same ops.
func (d *DeltaBuilder) AddNode(label, desc string) NodeID {
	d.added = append(d.added, &nodePatch{adj: true, text: true, label: label, desc: desc})
	d.ops++
	return NodeID(d.baseN + len(d.added) - 1)
}

// Rel interns a relationship type name and returns its id. Base relation ids
// are preserved; new names are appended in first-use order, matching a fresh
// Builder that replays the base edges then the delta.
func (d *DeltaBuilder) Rel(name string) RelID {
	if id, ok := d.relIDs[name]; ok {
		return id
	}
	id := RelID(len(d.relNames))
	d.relNames = append(d.relNames, name)
	d.relIDs[name] = id
	return id
}

// RelByName looks up an interned relation without adding it.
func (d *DeltaBuilder) RelByName(name string) (RelID, bool) {
	id, ok := d.relIDs[name]
	return id, ok
}

func (d *DeltaBuilder) checkNode(v NodeID) error {
	if v < 0 || int(v) >= d.NumNodes() {
		return fmt.Errorf("graph: node %d out of range [0,%d)", v, d.NumNodes())
	}
	return nil
}

// adjPatch returns a writable adjacency patch for v, cloning the base CSR
// row on first touch (copy-on-write at node granularity).
func (d *DeltaBuilder) adjPatch(v NodeID) *nodePatch {
	if int(v) >= d.baseN {
		return d.added[int(v)-d.baseN]
	}
	p := d.patch[v]
	if p == nil {
		p = &nodePatch{}
		d.patch[v] = p
	}
	if !p.adj {
		dst, rel := d.base.OutEdges(v)
		p.outDst = slices.Clone(dst)
		p.outRel = slices.Clone(rel)
		src, rel2 := d.base.InEdges(v)
		p.inSrc = slices.Clone(src)
		p.inRel = slices.Clone(rel2)
		p.adj = true
	}
	return p
}

// insertAdj inserts (n, r) keeping the list sorted by (endpoint, rel), the
// invariant Builder.Build establishes and every traversal depends on.
func insertAdj(ids *[]NodeID, rels *[]RelID, n NodeID, r RelID) {
	i := sort.Search(len(*ids), func(i int) bool {
		if (*ids)[i] != n {
			return (*ids)[i] > n
		}
		return (*rels)[i] >= r
	})
	*ids = slices.Insert(*ids, i, n)
	*rels = slices.Insert(*rels, i, r)
}

// removeAdj removes one instance of (n, r); it reports whether one existed.
func removeAdj(ids *[]NodeID, rels *[]RelID, n NodeID, r RelID) bool {
	i := sort.Search(len(*ids), func(i int) bool {
		if (*ids)[i] != n {
			return (*ids)[i] > n
		}
		return (*rels)[i] >= r
	})
	if i >= len(*ids) || (*ids)[i] != n || (*rels)[i] != r {
		return false
	}
	*ids = slices.Delete(*ids, i, i+1)
	*rels = slices.Delete(*rels, i, i+1)
	return true
}

// AddEdge records a directed edge from -> to with relation r. Both endpoints
// must exist and r must be interned.
func (d *DeltaBuilder) AddEdge(from, to NodeID, r RelID) error {
	if err := d.checkNode(from); err != nil {
		return err
	}
	if err := d.checkNode(to); err != nil {
		return err
	}
	if r < 0 || int(r) >= len(d.relNames) {
		return fmt.Errorf("graph: relation id %d out of range [0,%d)", r, len(d.relNames))
	}
	fp := d.adjPatch(from)
	insertAdj(&fp.outDst, &fp.outRel, to, r)
	tp := d.adjPatch(to)
	insertAdj(&tp.inSrc, &tp.inRel, from, r)
	d.edges++
	d.ops++
	return nil
}

// RemoveEdge removes one instance of the directed edge (from, to, r). It
// fails if no such edge exists.
func (d *DeltaBuilder) RemoveEdge(from, to NodeID, r RelID) error {
	if err := d.checkNode(from); err != nil {
		return err
	}
	if err := d.checkNode(to); err != nil {
		return err
	}
	if r < 0 || int(r) >= len(d.relNames) {
		return fmt.Errorf("graph: relation id %d out of range [0,%d)", r, len(d.relNames))
	}
	fp := d.adjPatch(from)
	if !removeAdj(&fp.outDst, &fp.outRel, to, r) {
		return fmt.Errorf("graph: edge (%d)-[%s]->(%d) does not exist", from, d.relNames[r], to)
	}
	tp := d.adjPatch(to)
	if !removeAdj(&tp.inSrc, &tp.inRel, from, r) {
		// The out-list held the edge, so the in-list must too; a miss means
		// the overlay invariants are broken.
		return fmt.Errorf("graph: in-adjacency desync removing (%d)-[%s]->(%d)", from, d.relNames[r], to)
	}
	d.edges--
	d.ops++
	return nil
}

// SetText replaces the label and description of v (the node's keyword
// source). Adjacency is untouched.
func (d *DeltaBuilder) SetText(v NodeID, label, desc string) error {
	if err := d.checkNode(v); err != nil {
		return err
	}
	if int(v) >= d.baseN {
		p := d.added[int(v)-d.baseN]
		p.label, p.desc = label, desc
		d.ops++
		return nil
	}
	p := d.patch[v]
	if p == nil {
		p = &nodePatch{}
		d.patch[v] = p
	}
	p.label, p.desc, p.text = label, desc, true
	d.ops++
	return nil
}

// Label returns the effective label of v in the pending delta view.
func (d *DeltaBuilder) Label(v NodeID) string {
	if int(v) >= d.baseN {
		return d.added[int(v)-d.baseN].label
	}
	if p := d.patch[v]; p != nil && p.text {
		return p.label
	}
	return d.base.Label(v)
}

// Description returns the effective description of v in the pending view.
func (d *DeltaBuilder) Description(v NodeID) string {
	if int(v) >= d.baseN {
		return d.added[int(v)-d.baseN].desc
	}
	if p := d.patch[v]; p != nil && p.text {
		return p.desc
	}
	return d.base.Description(v)
}

// TextChanged reports the base nodes whose label/desc differ from the base
// graph plus the count of appended nodes; the index overlay is derived from
// exactly this set.
func (d *DeltaBuilder) TextChanged() (patched []NodeID, addedNodes int) {
	for v, p := range d.patch {
		if p.text {
			patched = append(patched, v)
		}
	}
	slices.Sort(patched)
	return patched, len(d.added)
}

// Overlay derives an immutable mutated view of the base graph. The returned
// Graph shares the base CSR arrays but deep-copies every touched overlay
// structure, so the builder may keep mutating afterwards while readers hold
// the view indefinitely.
func (d *DeltaBuilder) Overlay() *Graph {
	if d.ops == 0 {
		return d.base
	}
	ov := &overlay{
		baseN:    d.baseN,
		patch:    make(map[NodeID]*nodePatch, len(d.patch)),
		added:    make([]*nodePatch, len(d.added)),
		relNames: slices.Clone(d.relNames),
		edges:    d.edges,
	}
	for v, p := range d.patch {
		ov.patch[v] = p.clone()
	}
	for i, p := range d.added {
		ov.added[i] = p.clone()
	}
	return withOverlay(d.base, ov)
}

func (p *nodePatch) clone() *nodePatch {
	q := *p
	q.outDst = slices.Clone(p.outDst)
	q.outRel = slices.Clone(p.outRel)
	q.inSrc = slices.Clone(p.inSrc)
	q.inRel = slices.Clone(p.inRel)
	return &q
}
