package graph

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildPath returns a path graph v0 - v1 - ... - v_{n-1} with directed edges
// v_i -> v_{i+1}.
func buildPath(t testing.TB, n int) *Graph {
	t.Helper()
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(fmt.Sprintf("n%d", i), "")
	}
	r := b.Rel("next")
	for i := 0; i < n-1; i++ {
		b.AddEdge(NodeID(i), NodeID(i+1), r)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode("alpha", "first")
	c := b.AddNode("beta", "second")
	if b.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", b.NumNodes())
	}
	r1 := b.Rel("instance of")
	r2 := b.Rel("subclass of")
	if b.Rel("instance of") != r1 {
		t.Fatal("Rel not interned")
	}
	b.AddEdge(a, c, r1)
	b.AddEdgeNamed(c, a, "subclass of")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 2 || g.NumRels() != 2 {
		t.Fatalf("got %d nodes %d edges %d rels", g.NumNodes(), g.NumEdges(), g.NumRels())
	}
	if g.Label(a) != "alpha" || g.Description(c) != "second" {
		t.Fatal("labels/descs wrong")
	}
	if g.RelName(r2) != "subclass of" {
		t.Fatalf("RelName = %q", g.RelName(r2))
	}
	if g.OutDegree(a) != 1 || g.InDegree(a) != 1 || g.Degree(a) != 2 {
		t.Fatalf("degrees of a: out=%d in=%d", g.OutDegree(a), g.InDegree(a))
	}
	if !g.HasEdge(a, c) || g.HasEdge(a, a) {
		t.Fatal("HasEdge wrong")
	}
}

func TestBuildRejectsBadEndpoints(t *testing.T) {
	b := NewBuilder()
	b.AddNode("only", "")
	b.AddEdge(0, 5, b.Rel("x"))
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted out-of-range endpoint")
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := NewBuilder().Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph not empty")
	}
}

func TestForEachNeighborBidirected(t *testing.T) {
	// a -> b, c -> a: neighbors of a are b (out) and c (in).
	b := NewBuilder()
	na := b.AddNode("a", "")
	nb := b.AddNode("b", "")
	nc := b.AddNode("c", "")
	b.AddEdgeNamed(na, nb, "r1")
	b.AddEdgeNamed(nc, na, "r2")
	g, _ := b.Build()
	type hit struct {
		n   NodeID
		out bool
	}
	var hits []hit
	g.ForEachNeighbor(na, func(n NodeID, _ RelID, out bool) { hits = append(hits, hit{n, out}) })
	if len(hits) != 2 || hits[0] != (hit{nb, true}) || hits[1] != (hit{nc, false}) {
		t.Fatalf("hits = %v", hits)
	}
}

func TestAdjacencySorted(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 10; i++ {
		b.AddNode(fmt.Sprintf("n%d", i), "")
	}
	r := b.Rel("e")
	// Insert in reverse order; CSR must come out sorted.
	for i := 9; i >= 1; i-- {
		b.AddEdge(0, NodeID(i), r)
	}
	g, _ := b.Build()
	dst, _ := g.OutEdges(0)
	for i := 1; i < len(dst); i++ {
		if dst[i-1] > dst[i] {
			t.Fatalf("out adjacency not sorted: %v", dst)
		}
	}
}

func TestNeighborSlicesMatchForEach(t *testing.T) {
	// OutNeighbors/InNeighbors expose the raw CSR slices the flattened
	// expansion kernel iterates; concatenated they must reproduce
	// ForEachNeighbor's node order exactly for every node.
	g, _ := randomGraph(t, 40, 160, 5)
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		var want []NodeID
		g.ForEachNeighbor(v, func(n NodeID, _ RelID, _ bool) { want = append(want, n) })
		got := append(append([]NodeID{}, g.OutNeighbors(v)...), g.InNeighbors(v)...)
		if len(got) != len(want) {
			t.Fatalf("node %d: %d neighbors via slices, %d via ForEachNeighbor", v, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("node %d neighbor %d: slice order %d, callback order %d", v, i, got[i], want[i])
			}
		}
		if len(g.OutNeighbors(v)) != g.OutDegree(v) || len(g.InNeighbors(v)) != g.InDegree(v) {
			t.Fatalf("node %d: neighbor slice lengths disagree with degrees", v)
		}
	}
}

func TestNeighborIndexedAccess(t *testing.T) {
	// Neighbor(v, j) must agree with ForEachNeighbor's order for every
	// node of a random graph (the SIMT kernels stride by index).
	g, _ := randomGraph(t, 40, 160, 5)
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		type rec struct {
			n   NodeID
			rel RelID
			out bool
		}
		var seq []rec
		g.ForEachNeighbor(v, func(n NodeID, rel RelID, out bool) {
			seq = append(seq, rec{n, rel, out})
		})
		if len(seq) != g.Degree(v) {
			t.Fatalf("node %d: %d neighbors enumerated, degree %d", v, len(seq), g.Degree(v))
		}
		for j, want := range seq {
			n, rel, out := g.Neighbor(v, j)
			if n != want.n || rel != want.rel || out != want.out {
				t.Fatalf("node %d neighbor %d: got (%d,%d,%v), want (%d,%d,%v)",
					v, j, n, rel, out, want.n, want.rel, want.out)
			}
		}
	}
}

// randomGraph builds a random graph with n nodes and m edges, deterministic
// in seed, and returns also the edge list for reference computations.
func randomGraph(t testing.TB, n, m int, seed int64) (*Graph, [][2]NodeID) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(fmt.Sprintf("n%d", i), "")
	}
	rels := []RelID{b.Rel("r0"), b.Rel("r1"), b.Rel("r2")}
	var edges [][2]NodeID
	for i := 0; i < m; i++ {
		f := NodeID(rng.Intn(n))
		to := NodeID(rng.Intn(n))
		b.AddEdge(f, to, rels[rng.Intn(len(rels))])
		edges = append(edges, [2]NodeID{f, to})
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, edges
}

func TestCSRPreservesEdgeMultiset(t *testing.T) {
	f := func(seed int64) bool {
		n := 30
		g, edges := randomGraph(t, n, 120, seed)
		if g.Validate() != nil {
			return false
		}
		// Every input edge appears in both CSRs; counts match.
		outCount := map[[2]NodeID]int{}
		for v := NodeID(0); int(v) < n; v++ {
			dst, _ := g.OutEdges(v)
			for _, d := range dst {
				outCount[[2]NodeID{v, d}]++
			}
			src, _ := g.InEdges(v)
			for _, s := range src {
				outCount[[2]NodeID{s, v}]--
			}
		}
		for _, c := range outCount {
			if c != 0 {
				return false
			}
		}
		want := map[[2]NodeID]int{}
		for _, e := range edges {
			want[e]++
		}
		got := map[[2]NodeID]int{}
		for v := NodeID(0); int(v) < n; v++ {
			dst, _ := g.OutEdges(v)
			for _, d := range dst {
				got[[2]NodeID{v, d}]++
			}
		}
		if len(got) != len(want) {
			return false
		}
		for k, c := range want {
			if got[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeSumsEqualEdges(t *testing.T) {
	f := func(seed int64) bool {
		g, _ := randomGraph(t, 25, 80, seed)
		sumOut, sumIn := 0, 0
		for v := NodeID(0); int(v) < g.NumNodes(); v++ {
			sumOut += g.OutDegree(v)
			sumIn += g.InDegree(v)
		}
		return sumOut == g.NumEdges() && sumIn == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
