package graph

import (
	"math"
	"math/rand"
)

// Distance returns the bi-directed unweighted shortest distance between s
// and t, or -1 if t is unreachable from s. It runs a bidirectional BFS,
// which is what makes sampling 10,000 pairs on a multi-million-edge graph
// cheap (the paper samples pairs to estimate the average distance A used by
// the Penalty-and-Reward mapping, Table II).
func (g *Graph) Distance(s, t NodeID) int {
	if s == t {
		return 0
	}
	n := g.NumNodes()
	distS := make([]int32, n)
	distT := make([]int32, n)
	for i := range distS {
		distS[i] = -1
		distT[i] = -1
	}
	distS[s], distT[t] = 0, 0
	frontS := []NodeID{s}
	frontT := []NodeID{t}
	depthS, depthT := int32(0), int32(0)
	best := -1
	for len(frontS) > 0 && len(frontT) > 0 {
		// Expand the smaller frontier.
		if frontierCost(g, frontS) <= frontierCost(g, frontT) {
			next, meet := expandFrontier(g, frontS, distS, distT, depthS)
			if meet >= 0 && (best < 0 || meet < best) {
				best = meet
			}
			frontS, depthS = next, depthS+1
		} else {
			next, meet := expandFrontier(g, frontT, distT, distS, depthT)
			if meet >= 0 && (best < 0 || meet < best) {
				best = meet
			}
			frontT, depthT = next, depthT+1
		}
		if best >= 0 && int(depthS+depthT) >= best {
			return best
		}
	}
	return best
}

func frontierCost(g *Graph, f []NodeID) int {
	c := 0
	for _, v := range f {
		c += g.Degree(v)
	}
	return c
}

// expandFrontier advances one BFS level. dist is the side being expanded,
// other the opposite side; returns the next frontier and the best meeting
// distance found at this level (-1 if none).
func expandFrontier(g *Graph, front []NodeID, dist, other []int32, depth int32) ([]NodeID, int) {
	var next []NodeID
	meet := -1
	for _, v := range front {
		g.ForEachNeighbor(v, func(n NodeID, _ RelID, _ bool) {
			if dist[n] >= 0 {
				return
			}
			dist[n] = depth + 1
			if other[n] >= 0 {
				d := int(depth + 1 + other[n])
				if meet < 0 || d < meet {
					meet = d
				}
			}
			next = append(next, n)
		})
	}
	return next, meet
}

// DistanceSample holds the result of sampled average-distance estimation
// (the A and Deviation columns of Table II).
type DistanceSample struct {
	Pairs     int     // pairs requested
	Reachable int     // pairs with a finite distance
	Mean      float64 // average shortest distance A over reachable pairs
	Deviation float64 // population standard deviation over reachable pairs
}

// SampleAverageDistance estimates the average shortest distance between two
// random nodes by sampling `pairs` node pairs with the given rng, matching
// the paper's methodology ("We sample ten thousand pairs of nodes to
// estimate the average shortest distances").
func SampleAverageDistance(g *Graph, pairs int, rng *rand.Rand) DistanceSample {
	n := g.NumNodes()
	res := DistanceSample{Pairs: pairs}
	if n < 2 || pairs <= 0 {
		return res
	}
	var sum, sumSq float64
	for i := 0; i < pairs; i++ {
		s := NodeID(rng.Intn(n))
		t := NodeID(rng.Intn(n))
		if s == t {
			t = NodeID((int(t) + 1) % n)
		}
		d := g.Distance(s, t)
		if d < 0 {
			continue
		}
		res.Reachable++
		sum += float64(d)
		sumSq += float64(d) * float64(d)
	}
	if res.Reachable > 0 {
		res.Mean = sum / float64(res.Reachable)
		variance := sumSq/float64(res.Reachable) - res.Mean*res.Mean
		if variance < 0 {
			variance = 0
		}
		res.Deviation = math.Sqrt(variance)
	}
	return res
}

// BFSDistances returns the bi-directed BFS distance from each of the given
// sources to every node (-1 when unreachable). Used by tests as a reference
// implementation and by the relevance oracle.
func BFSDistances(g *Graph, sources ...NodeID) []int32 {
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	var queue []NodeID
	for _, s := range sources {
		if dist[s] < 0 {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		g.ForEachNeighbor(v, func(n NodeID, _ RelID, _ bool) {
			if dist[n] < 0 {
				dist[n] = dist[v] + 1
				queue = append(queue, n)
			}
		})
	}
	return dist
}

// Components labels each node with a connected-component id (bi-directed)
// and returns the labels and the component count.
func Components(g *Graph) ([]int32, int) {
	n := g.NumNodes()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	next := int32(0)
	var stack []NodeID
	for v := 0; v < n; v++ {
		if comp[v] >= 0 {
			continue
		}
		comp[v] = next
		stack = append(stack[:0], NodeID(v))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			g.ForEachNeighbor(u, func(w NodeID, _ RelID, _ bool) {
				if comp[w] < 0 {
					comp[w] = next
					stack = append(stack, w)
				}
			})
		}
		next++
	}
	return comp, int(next)
}

// LargestComponent returns the nodes of the largest connected component.
func LargestComponent(g *Graph) []NodeID {
	comp, k := Components(g)
	if k == 0 {
		return nil
	}
	sizes := make([]int, k)
	for _, c := range comp {
		sizes[c]++
	}
	bestC, bestN := 0, 0
	for c, s := range sizes {
		if s > bestN {
			bestC, bestN = c, s
		}
	}
	out := make([]NodeID, 0, bestN)
	for v, c := range comp {
		if int(c) == bestC {
			out = append(out, NodeID(v))
		}
	}
	return out
}
