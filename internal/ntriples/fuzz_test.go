package ntriples

import (
	"strings"
	"testing"
)

// FuzzRead throws arbitrary bytes at the N-Triples parser: it must never
// panic, and on success the resulting graph must validate.
func FuzzRead(f *testing.F) {
	f.Add(sample)
	f.Add(`<http://a> <http://b> <http://c> .`)
	f.Add(`<http://a> <http://b> "lit"@en .`)
	f.Add(`_:x <http://b> "esc \" \\ A"^^<http://t> .`)
	f.Add("# only a comment\n")
	f.Add(`<http://a> <http://b> "\U0001F600" .`)
	f.Fuzz(func(t *testing.T, input string) {
		im := NewImporter()
		if err := im.Read(strings.NewReader(input)); err != nil {
			return // rejected input is fine; panics are not
		}
		g, _, err := im.Build()
		if err != nil {
			t.Fatalf("Read accepted but Build failed: %v", err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("imported graph invalid: %v", err)
		}
	})
}

// FuzzUnescape: the escape decoder must never panic and must round-trip
// pure-ASCII escape-free strings.
func FuzzUnescape(f *testing.F) {
	f.Add(`plain`)
	f.Add(`a\tb\nc\"d\\e`)
	f.Add(`A\U0001F600`)
	f.Fuzz(func(t *testing.T, s string) {
		out, err := unescape(s)
		if err != nil {
			return
		}
		if !strings.ContainsRune(s, '\\') && out != s {
			t.Fatalf("escape-free input changed: %q -> %q", s, out)
		}
	})
}
