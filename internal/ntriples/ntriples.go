// Package ntriples imports RDF N-Triples data into the knowledge-graph
// builder. The paper observes that Wikidata, Freebase and Yago "can all be
// represented in an RDF graph" (§I); this package is the bridge from such
// exports to the engine:
//
//   - triples whose object is an IRI or blank node become directed labeled
//     edges (predicate = relationship type),
//   - rdfs:label / skos:prefLabel / schema:name literals become node labels,
//   - schema:description / rdfs:comment literals become node descriptions,
//   - other literal-object triples are skipped (the engine indexes entity
//     text, not datatype values),
//   - language-tagged literals keep only the tag-less or English variants.
//
// The parser handles the line-oriented N-Triples grammar (W3C RDF 1.1
// N-Triples): IRIREF, blank node labels, literals with escapes, datatype
// and language annotations, comments and blank lines.
package ntriples

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"wikisearch/internal/graph"
)

// Common predicate IRIs treated as text rather than edges.
var (
	labelPredicates = map[string]bool{
		"http://www.w3.org/2000/01/rdf-schema#label":    true,
		"http://www.w3.org/2004/02/skos/core#prefLabel": true,
		"http://schema.org/name":                        true,
	}
	descPredicates = map[string]bool{
		"http://schema.org/description":                true,
		"http://www.w3.org/2000/01/rdf-schema#comment": true,
	}
)

// Stats summarizes one import.
type Stats struct {
	Triples     int // triples parsed
	Edges       int // object-property triples turned into edges
	Labels      int // label literals applied
	Descs       int // description literals applied
	SkippedLits int // other literal triples ignored
	SkippedLang int // literals dropped for a non-English language tag
}

// term is one parsed RDF term.
type term struct {
	kind  termKind
	value string // IRI, blank label, or literal lexical form
	lang  string // language tag, lower-cased
}

type termKind int

const (
	termIRI termKind = iota
	termBlank
	termLiteral
)

// Importer accumulates triples into a graph builder, interning subjects and
// objects as nodes.
type Importer struct {
	b     *graph.Builder
	nodes map[string]graph.NodeID
	// text accumulated before Build: labels/descriptions by node.
	labels map[graph.NodeID]string
	descs  map[graph.NodeID]string
	stats  Stats
}

// NewImporter returns an empty importer.
func NewImporter() *Importer {
	return &Importer{
		b:      graph.NewBuilder(),
		nodes:  map[string]graph.NodeID{},
		labels: map[graph.NodeID]string{},
		descs:  map[graph.NodeID]string{},
	}
}

// node interns an IRI or blank label as a graph node.
func (im *Importer) node(key string) graph.NodeID {
	if id, ok := im.nodes[key]; ok {
		return id
	}
	id := im.b.AddNode(localName(key), "")
	im.nodes[key] = id
	return id
}

// localName derives a readable fallback label from an IRI (its fragment or
// last path segment) so unlabeled entities still render.
func localName(iri string) string {
	s := iri
	if i := strings.LastIndexAny(s, "#/"); i >= 0 && i+1 < len(s) {
		s = s[i+1:]
	}
	return s
}

// Read consumes an N-Triples stream. Malformed lines abort with an error
// naming the line number.
func (im *Importer) Read(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := im.line(line); err != nil {
			return fmt.Errorf("ntriples: line %d: %w", lineNo, err)
		}
	}
	return sc.Err()
}

func (im *Importer) line(line string) error {
	p := parser{s: line}
	subj, err := p.term()
	if err != nil {
		return err
	}
	if subj.kind == termLiteral {
		return fmt.Errorf("literal subject")
	}
	pred, err := p.term()
	if err != nil {
		return err
	}
	if pred.kind != termIRI {
		return fmt.Errorf("predicate must be an IRI")
	}
	obj, err := p.term()
	if err != nil {
		return err
	}
	if err := p.dot(); err != nil {
		return err
	}
	im.stats.Triples++

	s := im.node(subjectKey(subj))
	switch obj.kind {
	case termIRI, termBlank:
		o := im.node(subjectKey(obj))
		im.b.AddEdgeNamed(s, o, localName(pred.value))
		im.stats.Edges++
	case termLiteral:
		if obj.lang != "" && obj.lang != "en" && !strings.HasPrefix(obj.lang, "en-") {
			im.stats.SkippedLang++
			return nil
		}
		switch {
		case labelPredicates[pred.value]:
			if im.labels[s] == "" {
				im.labels[s] = obj.value
				im.stats.Labels++
			}
		case descPredicates[pred.value]:
			if im.descs[s] == "" {
				im.descs[s] = obj.value
				im.stats.Descs++
			}
		default:
			im.stats.SkippedLits++
		}
	}
	return nil
}

func subjectKey(t term) string {
	if t.kind == termBlank {
		return "_:" + t.value
	}
	return t.value
}

// Build assembles the graph; labels and descriptions recorded from literals
// replace the IRI-derived fallbacks.
func (im *Importer) Build() (*graph.Graph, Stats, error) {
	// The builder holds fallback labels; rebuild with final text. Builder
	// has no setter, so assemble a fresh one in id order.
	final := graph.NewBuilder()
	inv := make([]string, im.b.NumNodes())
	for key, id := range im.nodes {
		inv[id] = key
	}
	for id, key := range inv {
		label := im.labels[graph.NodeID(id)]
		if label == "" {
			label = localName(key)
		}
		final.AddNode(label, im.descs[graph.NodeID(id)])
	}
	g, err := im.b.Build() // validates endpoints
	if err != nil {
		return nil, im.stats, err
	}
	// Re-add edges into the relabeled builder.
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		dst, rels := g.OutEdges(v)
		for i, d := range dst {
			final.AddEdgeNamed(v, d, g.RelName(rels[i]))
		}
	}
	out, err := final.Build()
	return out, im.stats, err
}

// parser is a minimal N-Triples term scanner.
type parser struct {
	s string
	i int
}

func (p *parser) ws() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *parser) term() (term, error) {
	p.ws()
	if p.i >= len(p.s) {
		return term{}, fmt.Errorf("unexpected end of line")
	}
	switch p.s[p.i] {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	}
	return term{}, fmt.Errorf("unexpected character %q", p.s[p.i])
}

func (p *parser) iri() (term, error) {
	end := strings.IndexByte(p.s[p.i:], '>')
	if end < 0 {
		return term{}, fmt.Errorf("unterminated IRI")
	}
	v := p.s[p.i+1 : p.i+end]
	p.i += end + 1
	return term{kind: termIRI, value: v}, nil
}

func (p *parser) blank() (term, error) {
	if !strings.HasPrefix(p.s[p.i:], "_:") {
		return term{}, fmt.Errorf("malformed blank node")
	}
	j := p.i + 2
	for j < len(p.s) && p.s[j] != ' ' && p.s[j] != '\t' && p.s[j] != '.' {
		j++
	}
	if j == p.i+2 {
		return term{}, fmt.Errorf("empty blank node label")
	}
	v := p.s[p.i+2 : j]
	p.i = j
	return term{kind: termBlank, value: v}, nil
}

func (p *parser) literal() (term, error) {
	// Find the closing quote, honoring backslash escapes.
	j := p.i + 1
	for j < len(p.s) {
		if p.s[j] == '\\' {
			j += 2
			continue
		}
		if p.s[j] == '"' {
			break
		}
		j++
	}
	if j >= len(p.s) {
		return term{}, fmt.Errorf("unterminated literal")
	}
	raw := p.s[p.i+1 : j]
	p.i = j + 1
	val, err := unescape(raw)
	if err != nil {
		return term{}, err
	}
	t := term{kind: termLiteral, value: val}
	// Optional language tag or datatype.
	if p.i < len(p.s) && p.s[p.i] == '@' {
		k := p.i + 1
		for k < len(p.s) && p.s[k] != ' ' && p.s[k] != '\t' && p.s[k] != '.' {
			k++
		}
		t.lang = strings.ToLower(p.s[p.i+1 : k])
		if t.lang == "" {
			return term{}, fmt.Errorf("empty language tag")
		}
		p.i = k
	} else if strings.HasPrefix(p.s[p.i:], "^^") {
		p.i += 2
		if _, err := p.iri(); err != nil {
			return term{}, fmt.Errorf("malformed datatype: %w", err)
		}
	}
	return t, nil
}

func (p *parser) dot() error {
	p.ws()
	if p.i >= len(p.s) || p.s[p.i] != '.' {
		return fmt.Errorf("missing terminating '.'")
	}
	p.i++
	p.ws()
	if p.i != len(p.s) && !strings.HasPrefix(p.s[p.i:], "#") {
		return fmt.Errorf("trailing garbage after '.'")
	}
	return nil
}

// unescape decodes N-Triples string escapes (\t \n \r \" \\ \uXXXX \UXXXXXXXX).
func unescape(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			i++
			continue
		}
		if i+1 >= len(s) {
			return "", fmt.Errorf("dangling escape")
		}
		switch s[i+1] {
		case 't':
			b.WriteByte('\t')
			i += 2
		case 'n':
			b.WriteByte('\n')
			i += 2
		case 'r':
			b.WriteByte('\r')
			i += 2
		case '"':
			b.WriteByte('"')
			i += 2
		case '\\':
			b.WriteByte('\\')
			i += 2
		case 'u', 'U':
			size := 4
			if s[i+1] == 'U' {
				size = 8
			}
			if i+2+size > len(s) {
				return "", fmt.Errorf("truncated \\%c escape", s[i+1])
			}
			code, err := strconv.ParseUint(s[i+2:i+2+size], 16, 32)
			if err != nil {
				return "", fmt.Errorf("bad \\%c escape: %v", s[i+1], err)
			}
			b.WriteRune(rune(code))
			i += 2 + size
		default:
			return "", fmt.Errorf("unknown escape \\%c", s[i+1])
		}
	}
	return b.String(), nil
}
