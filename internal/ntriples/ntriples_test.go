package ntriples

import (
	"strings"
	"testing"
)

const sample = `# a tiny Wikidata-flavored export
<http://example.org/Q1> <http://www.w3.org/2000/01/rdf-schema#label> "SPARQL"@en .
<http://example.org/Q1> <http://schema.org/description> "RDF query language" .
<http://example.org/Q1> <http://example.org/prop/instanceOf> <http://example.org/Q3> .
<http://example.org/Q2> <http://www.w3.org/2000/01/rdf-schema#label> "SQL" .
<http://example.org/Q2> <http://example.org/prop/instanceOf> <http://example.org/Q3> .
<http://example.org/Q3> <http://www.w3.org/2000/01/rdf-schema#label> "query language"@en .
<http://example.org/Q3> <http://www.w3.org/2000/01/rdf-schema#label> "langage de requête"@fr .
<http://example.org/Q1> <http://example.org/prop/population> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
_:b0 <http://example.org/prop/relatedTo> <http://example.org/Q1> .

<http://example.org/Q4> <http://schema.org/name> "escaped \"quote\" and é" .
`

func importSample(t *testing.T) (*Importer, Stats) {
	t.Helper()
	im := NewImporter()
	if err := im.Read(strings.NewReader(sample)); err != nil {
		t.Fatal(err)
	}
	return im, im.stats
}

func TestImportSample(t *testing.T) {
	im, st := importSample(t)
	if st.Triples != 10 {
		t.Fatalf("triples = %d, want 10", st.Triples)
	}
	if st.Edges != 3 {
		t.Fatalf("edges = %d, want 3", st.Edges)
	}
	if st.Labels != 4 || st.Descs != 1 {
		t.Fatalf("labels/descs = %d/%d", st.Labels, st.Descs)
	}
	if st.SkippedLang != 1 { // the French label
		t.Fatalf("skipped lang = %d", st.SkippedLang)
	}
	if st.SkippedLits != 1 { // the population integer
		t.Fatalf("skipped lits = %d", st.SkippedLits)
	}

	g, _, err := im.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Q1, Q2, Q3, blank b0, Q4 = 5 nodes.
	if g.NumNodes() != 5 {
		t.Fatalf("nodes = %d, want 5", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	// Labels resolved; English preferred; escapes decoded.
	wantLabels := map[string]bool{
		"SPARQL": true, "SQL": true, "query language": true,
		"escaped \"quote\" and é": true,
	}
	found := 0
	for v := 0; v < g.NumNodes(); v++ {
		if wantLabels[g.Label(int32(v))] {
			found++
		}
	}
	if found != 4 {
		t.Fatalf("resolved %d/4 labels", found)
	}
	// The description survived.
	ok := false
	for v := 0; v < g.NumNodes(); v++ {
		if g.Description(int32(v)) == "RDF query language" {
			ok = true
		}
	}
	if !ok {
		t.Fatal("description lost")
	}
}

func TestRelationNamesFromPredicates(t *testing.T) {
	im, _ := importSample(t)
	g, _, err := im.Build()
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for r := 0; r < g.NumRels(); r++ {
		names[g.RelName(int32(r))] = true
	}
	if !names["instanceOf"] || !names["relatedTo"] {
		t.Fatalf("relation names = %v", names)
	}
}

func TestMalformedLines(t *testing.T) {
	bad := []string{
		`<http://a> <http://b> .`,                     // missing object
		`<http://a> <http://b> <http://c>`,            // missing dot
		`"literal" <http://b> <http://c> .`,           // literal subject
		`<http://a> _:blank <http://c> .`,             // blank predicate
		`<http://a> <http://b> "unterminated .`,       // unterminated literal
		`<http://a> <http://b> "x"@ .`,                // empty lang tag
		`<http://a <http://b> <http://c> .`,           // unterminated IRI
		`<http://a> <http://b> <http://c> . trailing`, // garbage
		`<http://a> <http://b> "bad \q escape" .`,     // unknown escape
		`<http://a> <http://b> "trunc \u12" .`,        // truncated \u
		`<http://a> <http://b> "x"^^not-an-iri .`,     // malformed datatype
		`_: <http://b> <http://c> .`,                  // empty blank label
	}
	for _, line := range bad {
		im := NewImporter()
		if err := im.Read(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("accepted malformed line: %s", line)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	im := NewImporter()
	input := "# comment\n\n   \n<http://a> <http://b> <http://c> . # trailing comment\n"
	if err := im.Read(strings.NewReader(input)); err != nil {
		t.Fatal(err)
	}
	if im.stats.Triples != 1 {
		t.Fatalf("triples = %d", im.stats.Triples)
	}
}

func TestUnescape(t *testing.T) {
	cases := map[string]string{
		`plain`:      "plain",
		`a\tb`:       "a\tb",
		`a\nb`:       "a\nb",
		`a\"b`:       `a"b`,
		`a\\b`:       `a\b`,
		`\u0041`:     "A",
		`\U0001F600`: "😀",
		`mix é end`:  "mix é end",
	}
	for in, want := range cases {
		got, err := unescape(in)
		if err != nil {
			t.Errorf("unescape(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("unescape(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLocalName(t *testing.T) {
	cases := map[string]string{
		"http://example.org/path/Q42":    "Q42",
		"http://example.org/onto#Person": "Person",
		"plain":                          "plain",
		"http://example.org/trailing/":   "http://example.org/trailing/",
	}
	for in, want := range cases {
		if got := localName(in); got != want {
			t.Errorf("localName(%q) = %q, want %q", in, got, want)
		}
	}
}
