package wikisearch

import "context"

// This file collects the deprecated pre-v1 entry points. The public search
// surface is Engine.Search(ctx, Query) — one entry point, every variant —
// plus the Mutator for live updates; everything below is a thin shim kept
// only so existing callers keep compiling, and will be removed in v2. No
// code in this repository calls these (see compat_test.go for the pinned
// delegation behavior).

// SearchContext answers a keyword query under ctx.
//
// Deprecated: SearchContext is the pre-v1 name of Search; call Search.
// Removal: v2.
func (e *Engine) SearchContext(ctx context.Context, q Query) (*Result, error) {
	return e.Search(ctx, q)
}

// SearchBackground answers a keyword query detached from any caller
// context. Request handlers must use Search with r.Context() so deadlines
// and disconnects propagate.
//
// Deprecated: call Search with a context. Removal: v2.
//
//wikisearch:bgcontext
func (e *Engine) SearchBackground(q Query) (*Result, error) {
	return e.Search(context.Background(), q)
}

// SearchExactGST solves the query's Group Steiner Tree problem exactly.
//
// Deprecated: call Search with Variant ExactGST (TopK, MaxStates in the
// Query) and read Result.GST. Removal: v2.
//
//wikisearch:bgcontext
func (e *Engine) SearchExactGST(raw string, topK, maxStates int) (*GSTResult, error) {
	res, err := e.Search(context.Background(), Query{
		Text: raw, TopK: topK, MaxStates: maxStates, Variant: ExactGST,
	})
	if err != nil {
		return nil, err
	}
	return res.GST, nil
}

// SearchBANKS runs a baseline GST-approximation search.
//
// Deprecated: call Search with Variant BANKS (TopK, Bidirectional,
// MaxVisits in the Query) and read Result.Banks. Removal: v2.
//
//wikisearch:bgcontext
func (e *Engine) SearchBANKS(raw string, topK int, bidirectional bool, maxVisits int) (*BanksResult, error) {
	res, err := e.Search(context.Background(), Query{
		Text: raw, TopK: topK, Bidirectional: bidirectional, MaxVisits: maxVisits, Variant: BANKS,
	})
	if err != nil {
		return nil, err
	}
	return res.Banks, nil
}
