package wikisearch

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wikisearch/internal/trace"
)

// TestSearchObserverExactlyOnce: the observer contract — one invocation per
// Search call, no more, no fewer — holds on the solo path, the batched
// path (including twins that collapse into one column group), the batcher's
// solo fallback, and error outcomes.
func TestSearchObserverExactlyOnce(t *testing.T) {
	eng := newTestEngine(t)
	var calls atomic.Int64
	eng.SetSearchObserver(func(Query, *Result, error) { calls.Add(1) })

	// Solo path: one call per search, success or error.
	queries := batchTestQueries()
	for _, q := range queries {
		if _, err := eng.Search(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.Search(context.Background(), Query{Text: "zzzznosuchword"}); err == nil {
		t.Fatal("unmatched keyword accepted")
	}
	if got := calls.Load(); got != int64(len(queries))+1 {
		t.Fatalf("solo path: observer fired %d times for %d searches", got, len(queries)+1)
	}

	// Batched path: concurrent compatible searches (including an exact twin
	// of queries[0]) coalesce into shared executions; every caller still
	// observes its own outcome exactly once.
	calls.Store(0)
	eng.EnableBatching(BatchOptions{Window: 100 * time.Millisecond})
	defer eng.DisableBatching()
	work := append(append([]Query(nil), queries...), queries[0])
	var wg sync.WaitGroup
	for _, q := range work {
		wg.Add(1)
		go func(q Query) {
			defer wg.Done()
			if _, err := eng.Search(context.Background(), q); err != nil {
				t.Error(err)
			}
		}(q)
	}
	wg.Wait()
	if got := calls.Load(); got != int64(len(work)) {
		t.Fatalf("batched path: observer fired %d times for %d searches", got, len(work))
	}

	// Solo fallback: a batch of one runs the ordinary solo path; still one
	// observation.
	calls.Store(0)
	if _, err := eng.Search(context.Background(), queries[0]); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("solo fallback: observer fired %d times for 1 search", got)
	}
}

// TestSoloTraceCollected: every solo search leaves one assembled trace in
// the collector, linked to the caller's request ID, with the kernel's spans
// and a well-formed tree.
func TestSoloTraceCollected(t *testing.T) {
	eng := newTestEngine(t)
	if !eng.TracingEnabled() {
		t.Fatal("tracing should be on by default")
	}
	ctx := WithRequestID(context.Background(), 42)
	res, err := eng.Search(ctx, Query{Text: "xml rdf sql", TopK: 5, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	qt := eng.Traces().FindRequest(42)
	if qt == nil {
		t.Fatal("no trace collected for request 42")
	}
	if qt.Query != "xml rdf sql" || qt.Variant != "CPU-Par" || qt.TopK != 5 {
		t.Fatalf("trace identity wrong: %+v", qt)
	}
	if qt.Answers != len(res.Answers) {
		t.Fatalf("trace answers = %d, result has %d", qt.Answers, len(res.Answers))
	}
	if qt.Batched || qt.Solo {
		t.Fatalf("solo search marked batched=%v solo=%v", qt.Batched, qt.Solo)
	}
	if len(qt.Events) == 0 {
		t.Fatal("trace has no events")
	}
	kinds := map[trace.Kind]int{}
	for i := range qt.Events {
		ev := &qt.Events[i]
		if ev.End < ev.Start {
			t.Fatalf("event %v ends before it starts", ev)
		}
		if ev.Start < qt.StartNs {
			t.Fatalf("event %v starts before the query", ev)
		}
		kinds[ev.Kind]++
	}
	for _, k := range []trace.Kind{trace.KindInit, trace.KindBottomUp, trace.KindLevel, trace.KindTopDown} {
		if kinds[k] == 0 {
			t.Fatalf("no %v span recorded (kinds: %v)", k, kinds)
		}
	}
	if qt.PhaseNs(trace.KindBottomUp) <= 0 {
		t.Fatal("bottom-up phase has no duration")
	}
	tree := qt.Tree()
	if tree.Name != "search" || len(tree.Children) == 0 {
		t.Fatalf("malformed tree root: %+v", tree)
	}

	// Disabling tracing stops collection; re-enabling resumes it.
	eng.SetTracing(false)
	before := len(eng.Traces().Recent())
	if _, err := eng.Search(context.Background(), Query{Text: "xml rdf"}); err != nil {
		t.Fatal(err)
	}
	if got := len(eng.Traces().Recent()); got != before {
		t.Fatalf("tracing disabled but traces grew %d -> %d", before, got)
	}
	eng.SetTracing(true)
	if _, err := eng.Search(context.Background(), Query{Text: "xml rdf"}); err != nil {
		t.Fatal(err)
	}
	if got := len(eng.Traces().Recent()); got != before+1 {
		t.Fatalf("tracing re-enabled but traces went %d -> %d", before, got)
	}
}

// TestBatchedTraceAttribution: every member of a shared batch gets its own
// trace carrying the whole shared run — the shared bottom-up spans marked
// as working for it, its own column group's top-down extraction marked
// mine, and the other groups' extractions marked not-mine.
func TestBatchedTraceAttribution(t *testing.T) {
	eng := newTestEngine(t)
	eng.EnableBatching(BatchOptions{Window: 100 * time.Millisecond})
	defer eng.DisableBatching()

	// Three distinct queries (7 keyword columns, fits one batch) plus an
	// exact twin of the first: four members, three column groups.
	queries := []Query{
		{Text: "xml rdf sql", TopK: 3, Threads: 2},
		{Text: "sparql rdf", TopK: 2, Threads: 2},
		{Text: "xml xpath", TopK: 4, Threads: 2},
		{Text: "xml rdf sql", TopK: 3, Threads: 2},
	}
	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		go func(reqID uint64, q Query) {
			defer wg.Done()
			ctx := WithRequestID(context.Background(), reqID)
			if _, err := eng.Search(ctx, q); err != nil {
				t.Error(err)
			}
		}(uint64(100+i), q)
	}
	wg.Wait()

	groupOf := map[uint64]int{}
	for i := range queries {
		reqID := uint64(100 + i)
		qt := eng.Traces().FindRequest(reqID)
		if qt == nil {
			t.Fatalf("no trace for request %d", reqID)
		}
		if !qt.Batched {
			t.Fatalf("request %d not batched (solo=%v); the 100ms window should have coalesced all four", reqID, qt.Solo)
		}
		if qt.BatchQueries != 4 || qt.BatchColumns != 7 {
			t.Fatalf("request %d batch occupancy %d/%d columns, want 4/7", reqID, qt.BatchQueries, qt.BatchColumns)
		}
		if qt.GroupCols != len(qt.Terms) {
			t.Fatalf("request %d owns %d columns for %d terms", reqID, qt.GroupCols, len(qt.Terms))
		}
		groupOf[reqID] = qt.Group

		var sharedBottomUp, ownWait, ownTopDown, otherTopDown, batchRun bool
		for j := range qt.Events {
			ev := &qt.Events[j]
			if ev.End < ev.Start || ev.Start < qt.StartNs {
				t.Fatalf("request %d: bad event interval %+v (query start %d)", reqID, ev, qt.StartNs)
			}
			switch ev.Kind {
			case trace.KindBottomUp:
				if ev.Groups == 0 {
					sharedBottomUp = true
				}
			case trace.KindBatchWait:
				if ev.Groups == 1<<uint(qt.Group) {
					ownWait = true
				}
			case trace.KindBatchRun:
				batchRun = true
			case trace.KindTopDown:
				if ev.Groups == 1<<uint(qt.Group) {
					ownTopDown = true
				} else {
					otherTopDown = true
				}
			}
		}
		if !sharedBottomUp {
			t.Fatalf("request %d: shared bottom-up span missing from member trace", reqID)
		}
		if !ownWait || !batchRun {
			t.Fatalf("request %d: synthetic batch spans missing (wait=%v run=%v)", reqID, ownWait, batchRun)
		}
		if !ownTopDown {
			t.Fatalf("request %d: own group %d has no top-down span", reqID, qt.Group)
		}
		if !otherTopDown {
			t.Fatalf("request %d: expected other groups' top-down spans in the shared events", reqID)
		}
		// The other groups' extraction must not count toward this member's
		// phase time; its own must.
		var own int64
		for j := range qt.Events {
			ev := &qt.Events[j]
			if ev.Kind == trace.KindTopDown && ev.Groups == 1<<uint(qt.Group) {
				own += ev.End - ev.Start
			}
		}
		if got := qt.PhaseNs(trace.KindTopDown); got != own {
			t.Fatalf("request %d: PhaseNs(top-down) = %d, own-group spans sum to %d", reqID, got, own)
		}
	}
	// Twins share a column group; the distinct queries get distinct groups.
	if groupOf[100] != groupOf[103] {
		t.Fatalf("twin queries in different groups: %d vs %d", groupOf[100], groupOf[103])
	}
	if groupOf[100] == groupOf[101] || groupOf[101] == groupOf[102] || groupOf[100] == groupOf[102] {
		t.Fatalf("distinct queries share a group: %v", groupOf)
	}
}

// TestTraceAssemblyConcurrent: a randomized batched workload (run under
// -race in CI) always yields well-formed traces — monotone span intervals,
// level spans nested under a bottom-up ancestor, per-level phases nested
// under their level, and no span escaping the synthetic root.
func TestTraceAssemblyConcurrent(t *testing.T) {
	eng := newTestEngine(t)
	eng.EnableBatching(BatchOptions{Window: 500 * time.Microsecond})
	defer eng.DisableBatching()

	var mu sync.Mutex
	var collected []*QueryTrace
	eng.Traces().SetObserver(func(qt *QueryTrace) {
		mu.Lock()
		collected = append(collected, qt)
		mu.Unlock()
	})
	defer eng.Traces().SetObserver(nil)

	pool := []Query{
		{Text: "xml rdf sql", TopK: 3, Threads: 2},
		{Text: "sparql rdf", TopK: 2, Threads: 2},
		{Text: "xml xpath", TopK: 4, Threads: 2},
		{Text: "sql query language", TopK: 1, Threads: 2},
		{Text: "xml rdf sql", TopK: 3, Threads: 2}, // twin of pool[0]
	}
	const clients, iters = 6, 12
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				q := pool[rng.Intn(len(pool))]
				if _, err := eng.Search(context.Background(), q); err != nil {
					t.Error(err)
				}
			}
		}(int64(c + 1))
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(collected) != clients*iters {
		t.Fatalf("collected %d traces for %d searches", len(collected), clients*iters)
	}
	for _, qt := range collected {
		if qt.Err != "" {
			t.Fatalf("trace %d carries error %q", qt.ID, qt.Err)
		}
		for j := range qt.Events {
			ev := &qt.Events[j]
			if ev.End < ev.Start {
				t.Fatalf("trace %d: event %+v ends before it starts", qt.ID, ev)
			}
			if ev.Start < qt.StartNs {
				t.Fatalf("trace %d: event %+v precedes the query start %d", qt.ID, ev, qt.StartNs)
			}
			if j > 0 && ev.Start < qt.Events[j-1].Start {
				t.Fatalf("trace %d: events not sorted by start", qt.ID)
			}
		}
		if qt.Batched {
			var shared bool
			for j := range qt.Events {
				if qt.Events[j].Kind == trace.KindBottomUp && qt.Events[j].Groups == 0 {
					shared = true
				}
			}
			if !shared {
				t.Fatalf("trace %d: batched member missing the shared bottom-up span", qt.ID)
			}
		}
		root := qt.Tree()
		walkSpans(t, qt.ID, root, nil)
	}
}

// walkSpans checks structural invariants of an assembled trace tree:
// children lie within their parent's interval, level spans descend from a
// bottom-up span, and the per-level phases descend from a level span.
func walkSpans(t *testing.T, id uint64, s *TraceSpan, ancestors []*TraceSpan) {
	t.Helper()
	for _, c := range s.Children {
		if c.Start < s.Start || c.Start+c.Dur > s.Start+s.Dur {
			t.Fatalf("trace %d: span %s [%d,+%d] escapes parent %s [%d,+%d]",
				id, c.Name, c.Start, c.Dur, s.Name, s.Start, s.Dur)
		}
	}
	has := func(k trace.Kind) bool {
		for _, a := range ancestors {
			if a.Kind == k {
				return true
			}
		}
		return false
	}
	switch s.Kind {
	case trace.KindLevel:
		if !has(trace.KindBottomUp) {
			t.Fatalf("trace %d: level span with no bottom-up ancestor", id)
		}
	case trace.KindEnqueue, trace.KindIdentify, trace.KindExpand:
		if !has(trace.KindLevel) {
			t.Fatalf("trace %d: %s span with no level ancestor", id, s.Name)
		}
	}
	ancestors = append(ancestors, s)
	for _, c := range s.Children {
		walkSpans(t, id, c, ancestors)
	}
}
