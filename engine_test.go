package wikisearch

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"wikisearch/internal/core"
)

// paperGraph builds the Fig. 1 scenario: query languages around a "Query
// language" hub, keywords XML / RDF / SQL.
func paperGraph(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder()
	fql := b.AddNode("Facebook Query Language", "")
	sql := b.AddNode("SQL", "query language for relational databases")
	hub := b.AddNode("Query language", "")
	sparql := b.AddNode("SPARQL query language for RDF", "")
	s11 := b.AddNode("SPARQL 1.1", "")
	rdfql := b.AddNode("RDF query language", "")
	xquery := b.AddNode("XQuery", "XML query language")
	xpath3 := b.AddNode("XPath 3", "")
	xpath := b.AddNode("XPath", "XML path language")
	xpath2 := b.AddNode("XPath 2", "")
	b.AddEdgeNamed(fql, hub, "instance of")
	b.AddEdgeNamed(sql, hub, "instance of")
	b.AddEdgeNamed(sparql, hub, "instance of")
	b.AddEdgeNamed(s11, sparql, "version of")
	b.AddEdgeNamed(rdfql, sparql, "related to")
	b.AddEdgeNamed(rdfql, hub, "instance of")
	b.AddEdgeNamed(xquery, hub, "instance of")
	b.AddEdgeNamed(xpath3, xquery, "related to")
	b.AddEdgeNamed(xpath, xquery, "related to")
	b.AddEdgeNamed(xpath, hub, "instance of")
	b.AddEdgeNamed(xpath2, xpath, "version of")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newTestEngine(t testing.TB) *Engine {
	t.Helper()
	eng, err := NewEngine(paperGraph(t), EngineOptions{Threads: 2, DistanceSamplePairs: 200})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestVariantStrings(t *testing.T) {
	cases := map[Variant]string{
		CPUPar:      "CPU-Par",
		Sequential:  "Sequential",
		CPUParD:     "CPU-Par-d",
		GPUPar:      "GPU-Par",
		Variant(42): "Unknown",
	}
	for v, want := range cases {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), want)
		}
	}
}

func TestAnswerNodeIDsAndDeviation(t *testing.T) {
	eng := newTestEngine(t)
	if eng.DistanceDeviation() < 0 {
		t.Fatal("negative deviation")
	}
	res, err := eng.Search(context.Background(), Query{Text: "xml rdf sql", TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	ids := res.Answers[0].NodeIDs()
	if len(ids) != len(res.Answers[0].Nodes) {
		t.Fatal("NodeIDs length mismatch")
	}
	for i, n := range res.Answers[0].Nodes {
		if ids[i] != n.ID {
			t.Fatal("NodeIDs order mismatch")
		}
	}
}

func TestLoadEngineErrors(t *testing.T) {
	if _, err := LoadEngine(filepath.Join(t.TempDir(), "missing.wskb"), EngineOptions{}); err == nil {
		t.Fatal("missing dump accepted")
	}
	// NewEngine rejects a nil graph.
	if _, err := NewEngine(nil, EngineOptions{}); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestEngineBasics(t *testing.T) {
	eng := newTestEngine(t)
	if eng.Graph().NumNodes() != 10 {
		t.Fatalf("nodes = %d", eng.Graph().NumNodes())
	}
	if eng.AvgDistance() <= 0 {
		t.Fatal("AvgDistance not sampled")
	}
	if eng.VocabSize() == 0 {
		t.Fatal("empty vocabulary")
	}
	if eng.KeywordFrequency("sparql") != 2 {
		t.Fatalf("kwf(sparql) = %d, want 2", eng.KeywordFrequency("sparql"))
	}
	if w := eng.Weight(2); w <= 0 { // the hub has the most same-label in-edges
		t.Fatalf("hub weight = %v, want > 0", w)
	}
	if len(eng.Weights()) != 10 {
		t.Fatal("Weights length")
	}
}

func TestSearchFig1Scenario(t *testing.T) {
	eng := newTestEngine(t)
	res, err := eng.Search(context.Background(), Query{Text: "XML RDF SQL", TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Terms) != 3 {
		t.Fatalf("terms = %v", res.Terms)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}
	a := res.Answers[0]
	if a.CentralLabel == "" || a.Score < 0 || len(a.Nodes) == 0 {
		t.Fatalf("answer malformed: %+v", a)
	}
	// The best answer must cover all three keywords.
	seen := map[string]bool{}
	for _, n := range a.Nodes {
		for _, kw := range n.Keywords {
			seen[kw] = true
		}
	}
	for _, term := range res.Terms {
		if !seen[term] {
			t.Fatalf("keyword %q not covered by best answer", term)
		}
	}
	// Graph-shaped answers: the RDF keyword may be contributed by more than
	// one node (multi-path, §I's Fig. 1 motivation).
	if res.Total <= 0 || len(res.Phases) != 5 {
		t.Fatalf("profile missing: total=%v phases=%v", res.Total, res.Phases)
	}
	if a.Nodes[0].IsCentral != true {
		t.Fatal("first node must be the central node")
	}
}

func TestSearchVariantsAgree(t *testing.T) {
	eng := newTestEngine(t)
	base, err := eng.Search(context.Background(), Query{Text: "xml rdf sql", TopK: 5, Variant: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []Variant{CPUPar, CPUParD, GPUPar} {
		res, err := eng.Search(context.Background(), Query{Text: "xml rdf sql", TopK: 5, Variant: v})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if len(res.Answers) != len(base.Answers) {
			t.Fatalf("%v: %d answers vs %d", v, len(res.Answers), len(base.Answers))
		}
		for i := range res.Answers {
			if res.Answers[i].Central != base.Answers[i].Central ||
				res.Answers[i].Score != base.Answers[i].Score {
				t.Fatalf("%v: answer %d differs", v, i)
			}
		}
		if v == GPUPar && res.TransferSeconds <= 0 {
			t.Fatal("GPU variant must report transfer time")
		}
	}
}

func TestEngineStatePoolReuse(t *testing.T) {
	eng := newTestEngine(t)
	var first *Result
	const runs = 10
	for i := 0; i < runs; i++ {
		res, err := eng.Search(context.Background(), Query{Text: "xml rdf sql", TopK: 5})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res
			continue
		}
		if len(res.Answers) != len(first.Answers) {
			t.Fatalf("run %d: %d answers vs %d", i, len(res.Answers), len(first.Answers))
		}
		for j := range res.Answers {
			if res.Answers[j].Central != first.Answers[j].Central ||
				res.Answers[j].Score != first.Answers[j].Score {
				t.Fatalf("run %d: answer %d differs on reused state", i, j)
			}
		}
	}
	created, reused := eng.SearchStateStats()
	if created+reused != runs {
		t.Fatalf("state stats: created %d + reused %d != %d searches", created, reused, runs)
	}
	if reused == 0 {
		t.Fatal("sequential searches never reused a pooled state")
	}
}

// TestWarmEngineKernelAllocationFree guards the steady-state serving path:
// on a warm engine, the kernel stages of a pooled search state (parameter
// resolution, state reset, bottom-up search) allocate nothing. Only answer
// materialization in the top-down stage may allocate.
func TestWarmEngineKernelAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	eng := newTestEngine(t)
	q := Query{Text: "xml rdf sql", TopK: 5, Threads: 4}
	for i := 0; i < 3; i++ { // warm: level cache, state pool, buffer caps
		if _, err := eng.Search(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	in, _, err := eng.snap().prepare(q.Text)
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{TopK: q.TopK, AvgDist: eng.AvgDistance(), Threads: q.Threads}.Defaults()
	in.Levels = eng.activationLevels(p.Alpha, p.Threads)
	st := eng.acquireState()
	defer eng.releaseState(st)
	// Tracing on (the engine's always-on default): span recording is part
	// of the guarded kernel path.
	st.SetTracing(true)
	if _, err := st.BottomUp(in, p); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := st.BottomUp(in, p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm kernel path allocates %.1f times per query, want 0", allocs)
	}
}

func TestSearchErrors(t *testing.T) {
	eng := newTestEngine(t)
	if _, err := eng.Search(context.Background(), Query{Text: ""}); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := eng.Search(context.Background(), Query{Text: "the of and"}); err == nil {
		t.Fatal("stopword-only query accepted")
	}
	if _, err := eng.Search(context.Background(), Query{Text: "zzzzunknownword"}); err == nil {
		t.Fatal("unmatched keyword accepted")
	}
	if _, err := eng.Search(context.Background(), Query{Text: "xml", Variant: Variant(99)}); err == nil {
		t.Fatal("unknown variant accepted")
	}
	long := strings.Repeat("word ", 70)
	if _, err := eng.Search(context.Background(), Query{Text: long}); err == nil {
		t.Fatal("over-long query accepted")
	}
}

func TestEngineSaveLoad(t *testing.T) {
	eng := newTestEngine(t)
	eng.SetName("fig1")
	path := filepath.Join(t.TempDir(), "fig1.wskb")
	if err := eng.Save(path); err != nil {
		t.Fatal(err)
	}
	eng2, err := LoadEngine(path, EngineOptions{AvgDistance: eng.AvgDistance()})
	if err != nil {
		t.Fatal(err)
	}
	if eng2.Name() != "fig1" {
		t.Fatalf("name = %q", eng2.Name())
	}
	a, err := eng.Search(context.Background(), Query{Text: "xml rdf sql", Variant: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng2.Search(context.Background(), Query{Text: "xml rdf sql", Variant: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Answers) != len(b.Answers) || a.Answers[0].Central != b.Answers[0].Central {
		t.Fatal("reloaded engine answers differ")
	}
}

func TestSearchBANKS(t *testing.T) {
	eng := newTestEngine(t)
	for _, bidi := range []bool{false, true} {
		full, err := eng.Search(context.Background(), Query{Text: "xml rdf sql", TopK: 5, Variant: BANKS, Bidirectional: bidi})
		if err != nil {
			t.Fatal(err)
		}
		res := full.Banks
		if len(res.Trees) == 0 {
			t.Fatalf("bidi=%v: no trees", bidi)
		}
		if res.Trees[0].RootLabel == "" || res.Visited == 0 {
			t.Fatalf("bidi=%v: malformed result", bidi)
		}
		if len(res.Trees[0].Paths) != 3 {
			t.Fatalf("bidi=%v: %d paths, want 3", bidi, len(res.Trees[0].Paths))
		}
	}
	if _, err := eng.Search(context.Background(), Query{Text: "", TopK: 5, Variant: BANKS, Bidirectional: true}); err == nil {
		t.Fatal("BANKS accepted empty query")
	}
}

func TestSearchExactGST(t *testing.T) {
	eng := newTestEngine(t)
	full, err := eng.Search(context.Background(), Query{Text: "xml rdf sql", TopK: 3, Variant: ExactGST})
	if err != nil {
		t.Fatal(err)
	}
	res := full.GST
	if len(res.Trees) == 0 || res.Popped == 0 {
		t.Fatalf("result = %+v", res)
	}
	best := res.Trees[0]
	if best.RootLabel == "" || len(best.Nodes) == 0 {
		t.Fatalf("tree = %+v", best)
	}
	if len(best.Edges) != len(best.Nodes)-1 {
		t.Fatalf("not a tree: %d edges, %d nodes", len(best.Edges), len(best.Nodes))
	}
	// The exact optimum's cost is a lower bound for every returned tree.
	for _, tr := range res.Trees[1:] {
		if tr.Cost < best.Cost {
			t.Fatal("trees not cost-ordered")
		}
	}
	if _, err := eng.Search(context.Background(), Query{Text: "", TopK: 3, Variant: ExactGST}); err == nil {
		t.Fatal("empty query accepted")
	}
	// 13 distinct terms exceed gst.MaxKeywords (12).
	if _, err := eng.Search(context.Background(), Query{Text: "xml rdf sql xpath xquery sparql facebook language version query relational path databases", TopK: 1, Variant: ExactGST}); err == nil {
		t.Fatal("over-long GST query accepted")
	}
}

func TestGenerateDatasetAndSearch(t *testing.T) {
	ds, err := GenerateDataset(DatasetConfig{Preset: "tiny-sim"})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "tiny-sim" || len(ds.Planted) != 11 {
		t.Fatalf("dataset = %q with %d planted queries", ds.Name, len(ds.Planted))
	}
	eng, err := NewEngine(ds.Graph, EngineOptions{DistanceSamplePairs: 300})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Search(context.Background(), Query{Text: strings.Join(ds.Planted[0].Keywords, " "), TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers on planted query")
	}
	if _, err := GenerateDataset(DatasetConfig{Preset: "nope"}); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestAblationKnobs(t *testing.T) {
	eng := newTestEngine(t)
	base, err := eng.Search(context.Background(), Query{Text: "xml rdf sql", TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Without level-cover, answers can only grow.
	noLC, err := eng.Search(context.Background(), Query{Text: "xml rdf sql", TopK: 5, DisableLevelCover: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(noLC.Answers) != len(base.Answers) {
		t.Fatalf("answer count changed: %d vs %d", len(noLC.Answers), len(base.Answers))
	}
	for i := range base.Answers {
		if len(noLC.Answers[i].Nodes) < len(base.Answers[i].Nodes) {
			t.Fatal("disabling level-cover shrank an answer")
		}
		if noLC.Answers[i].PrunedNodes != 0 {
			t.Fatal("unpruned answer reports pruned nodes")
		}
	}
	// Without activation levels the search still covers all keywords.
	noAct, err := eng.Search(context.Background(), Query{Text: "xml rdf sql", TopK: 5, DisableActivation: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(noAct.Answers) == 0 {
		t.Fatal("activation ablation returned nothing")
	}
	for i := range noAct.Answers {
		a := &noAct.Answers[i]
		for _, n := range a.Nodes {
			for _, h := range n.HitLevels {
				_ = h // hit levels may now ignore activation; just ensure structure holds
			}
		}
	}
}

func TestSearchContextCancellation(t *testing.T) {
	eng := newTestEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, v := range []Variant{CPUPar, CPUParD, GPUPar} {
		if _, err := eng.Search(ctx, Query{Text: "xml rdf sql", Variant: v}); !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", v, err)
		}
	}
	// A live context behaves like Search.
	res, err := eng.Search(context.Background(), Query{Text: "xml rdf sql"})
	if err != nil || len(res.Answers) == 0 {
		t.Fatalf("live ctx: %v / %d answers", err, len(res.Answers))
	}
}

func TestEngineConcurrentSearches(t *testing.T) {
	eng := newTestEngine(t)
	const goroutines = 8
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		alpha := 0.05 + 0.05*float64(g%4) // exercise the level cache
		go func() {
			for i := 0; i < 5; i++ {
				if _, err := eng.Search(context.Background(), Query{Text: "xml rdf sql", Alpha: alpha}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestActivationDistribution(t *testing.T) {
	eng := newTestEngine(t)
	for _, alpha := range []float64{0.05, 0.1, 0.4} {
		d := eng.ActivationDistribution(alpha, 5)
		total := 0
		for _, c := range d {
			total += c
		}
		if total != eng.Graph().NumNodes() {
			t.Fatalf("α=%v: distribution sums to %d", alpha, total)
		}
	}
	// Fig. 3's shape: larger α moves mass toward low activation levels.
	small := eng.ActivationDistribution(0.05, 5)
	large := eng.ActivationDistribution(0.4, 5)
	if large[0] < small[0] {
		t.Fatalf("α=0.4 low-level mass %d < α=0.05's %d", large[0], small[0])
	}
}

// TestActivationLevelsSingleflight is the regression test for the
// duplicate-computation race: concurrent first requests with the same new
// α must coordinate on one computation and share one level vector.
func TestActivationLevelsSingleflight(t *testing.T) {
	eng := newTestEngine(t)
	const goroutines = 16
	var (
		start = make(chan struct{})
		wg    sync.WaitGroup
		got   [goroutines][]uint8
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			got[g] = eng.activationLevels(0.33, 1)
		}(g)
	}
	close(start)
	wg.Wait()
	if n := eng.LevelComputations(); n != 1 {
		t.Fatalf("α=0.33 computed %d times, want exactly 1", n)
	}
	for g := 1; g < goroutines; g++ {
		if &got[g][0] != &got[0][0] {
			t.Fatalf("goroutine %d got a different level vector", g)
		}
	}
}

// TestActivationLevelsEvictionSafety floods the cache past its bound while
// readers hold entries; under -race this would flag the old drop-mid-flight
// eviction, and every caller must still get a complete vector.
func TestActivationLevelsEvictionSafety(t *testing.T) {
	eng := newTestEngine(t)
	n := eng.Graph().NumNodes()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				alpha := 0.01 + 0.01*float64((g*40+i)%37)
				if lv := eng.activationLevels(alpha, 1); len(lv) != n {
					t.Errorf("α=%v: vector len %d, want %d", alpha, len(lv), n)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestSearchObserver(t *testing.T) {
	eng := newTestEngine(t)
	var (
		mu   sync.Mutex
		oks  int
		errs int
	)
	eng.SetSearchObserver(func(q Query, res *Result, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			errs++
			return
		}
		if res == nil || len(res.Phases) == 0 {
			t.Error("observer got a success with no phase profile")
		}
		oks++
	})
	if _, err := eng.Search(context.Background(), Query{Text: "xml rdf sql"}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Search(context.Background(), Query{Text: "zzznothing"}); err == nil {
		t.Fatal("want error for unmatched keyword")
	}
	mu.Lock()
	if oks != 1 || errs != 1 {
		t.Fatalf("observer saw %d ok / %d err, want 1/1", oks, errs)
	}
	mu.Unlock()
	eng.SetSearchObserver(nil) // removal must not panic searches
	if _, err := eng.Search(context.Background(), Query{Text: "xml rdf sql"}); err != nil {
		t.Fatal(err)
	}
}
