# Standard checks for this repository. `make check` is the gate every
# change must pass: gofmt, vet, the project's own static analyzers
# (wikilint), the full test suite under the race detector, and the
# allocation guards (which skip under -race, so they get a plain run).

GO ?= go

.PHONY: check build test vet lint race bench allocguard fmt fmtcheck

check: fmtcheck vet lint race allocguard

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# wikilint runs the engine-specific analyzers (atomicfield, hotpathalloc,
# nocopy, ctxhandler) over the whole module; see internal/analysis and
# DESIGN.md §8.
lint:
	$(GO) run ./cmd/wikilint ./...

race:
	$(GO) test -race ./...

# The zero-allocation guards use testing.AllocsPerRun, which the race
# detector's instrumentation would break, so they skip under -race and run
# here without it.
allocguard:
	$(GO) test -run AllocationFree -count=1 . ./internal/core ./internal/parallel

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...
	$(GO) run ./cmd/benchrunner -exp core -core-out BENCH_core.json

fmt:
	gofmt -l -w .

# fmtcheck fails (listing the files) when anything is not gofmt-clean.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
