# Standard checks for this repository. `make check` is the gate every
# change must pass: vet plus the full test suite under the race detector.

GO ?= go

.PHONY: check build test vet race bench fmt

check: vet race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

fmt:
	gofmt -l -w .
