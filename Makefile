# Standard checks for this repository. `make check` is the gate every
# change must pass: gofmt, vet, the project's own static analyzers
# (wikilint), the full test suite under the race detector, and the
# allocation guards (which skip under -race, so they get a plain run).

GO ?= go

.PHONY: check build test vet lint lint-cold race bench allocguard fuzzsmoke fmt fmtcheck

check: fmtcheck vet lint race allocguard fuzzsmoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# wikilint runs the engine-specific analyzers (atomicfield, hotpathalloc,
# nocopy, ctxhandler, mmapview, singlewriter, lifecycle, durability and the
# directives validator) over the whole module; see internal/analysis and
# DESIGN.md §8/§13. Warm runs replay from the content-hash result cache;
# lint-cold forces a fresh analysis.
lint:
	$(GO) run ./cmd/wikilint ./...

lint-cold:
	$(GO) run ./cmd/wikilint -nocache ./...

race:
	$(GO) test -race ./...

# The zero-allocation guards use testing.AllocsPerRun, which the race
# detector's instrumentation would break, so they skip under -race and run
# here without it.
allocguard:
	$(GO) test -run AllocationFree -count=1 . ./internal/core ./internal/parallel ./internal/trace ./internal/shard

# A short coverage-guided fuzz pass over every dump decoder generation
# (v1/v2 streams, v3 mmap images): corrupt dumps must never panic or
# over-allocate. A second pass round-trips random partitions through the
# per-shard segment format: reload must reconstruct the exact original CSR.
# (go test accepts one -fuzz pattern per invocation, hence two lines.)
# The full corpus lives under testdata/fuzz via go test.
fuzzsmoke:
	$(GO) test -run=^$$ -fuzz=FuzzLoadDump -fuzztime=20s ./internal/storage
	$(GO) test -run=^$$ -fuzz=FuzzPartitionRoundTrip -fuzztime=20s ./internal/storage

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...
	$(GO) run ./cmd/benchrunner -exp core -core-out BENCH_core.json
	$(GO) run ./cmd/benchrunner -exp startup -startup-out BENCH_startup.json
	$(GO) run ./cmd/benchrunner -exp shard -shard-out BENCH_shard.json

fmt:
	gofmt -l -w .

# fmtcheck fails (listing the files) when anything is not gofmt-clean.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
