# Standard checks for this repository. `make check` is the gate every
# change must pass: vet, the full test suite under the race detector, and
# the allocation guards (which skip under -race, so they get a plain run).

GO ?= go

.PHONY: check build test vet race bench allocguard fmt

check: vet race allocguard

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The zero-allocation guards use testing.AllocsPerRun, which the race
# detector's instrumentation would break, so they skip under -race and run
# here without it.
allocguard:
	$(GO) test -run AllocationFree -count=1 . ./internal/core

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...
	$(GO) run ./cmd/benchrunner -exp core -core-out BENCH_core.json

fmt:
	gofmt -l -w .
