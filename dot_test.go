package wikisearch

import (
	"context"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	eng := newTestEngine(t)
	res, err := eng.Search(context.Background(), Query{Text: "xml rdf sql", TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.Answers[0].WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	if !strings.HasPrefix(dot, "digraph answer {") || !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Fatalf("malformed DOT:\n%s", dot)
	}
	if !strings.Contains(dot, "doublecircle") {
		t.Fatal("central node not marked")
	}
	if !strings.Contains(dot, "lightyellow") {
		t.Fatal("keyword nodes not marked")
	}
	// Every node and edge rendered.
	a := &res.Answers[0]
	if got := strings.Count(dot, "];"); got < len(a.Nodes)+len(a.Edges) {
		t.Fatalf("rendered %d statements for %d nodes + %d edges", got, len(a.Nodes), len(a.Edges))
	}
	// Relationship labels present.
	if !strings.Contains(dot, "instance of") {
		t.Fatalf("edge labels missing:\n%s", dot)
	}
}
