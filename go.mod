module wikisearch

go 1.24
