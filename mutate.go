package wikisearch

import (
	"fmt"
	"sync"
	"time"

	"wikisearch/internal/graph"
	"wikisearch/internal/parallel"
	"wikisearch/internal/storage"
	"wikisearch/internal/text"
	"wikisearch/internal/weight"
)

// MutatorOptions tunes live graph mutation.
type MutatorOptions struct {
	// CompactAfterOps is the delta size (accumulated mutation operations
	// since the last compaction) at which a Publish wakes the background
	// compactor (default 4096; < 0 disables automatic compaction — call
	// Compact explicitly).
	CompactAfterOps int
	// Threads bounds publish/compaction parallelism (weight recomputation).
	// <= 0 selects GOMAXPROCS.
	Threads int
}

func (o MutatorOptions) defaults() MutatorOptions {
	if o.CompactAfterOps == 0 {
		o.CompactAfterOps = 4096
	}
	return o
}

// PublishInfo describes one epoch publication to the publish observer and
// the Publish/Compact callers.
type PublishInfo struct {
	// Epoch is the id of the newly installed epoch.
	Epoch uint64
	// Ops is the delta size (mutation operations since the last compaction)
	// carried by the published snapshot; 0 after a compaction.
	Ops int
	// Compacted reports whether this publication installed a freshly merged
	// flat snapshot (no overlay) rather than a delta view.
	Compacted bool
	// DeltaNodes / DeltaPatched / DeltaEdges / DeltaTerms describe the
	// published snapshot's overlay (all zero when Compacted).
	DeltaNodes   int
	DeltaPatched int
	DeltaEdges   int
	DeltaTerms   int
	// Duration is how long building and installing the snapshot took.
	Duration time.Duration
}

// PublishObserver receives every epoch publication (Mutator.Publish and
// compactions). It must be safe for concurrent use; the serving layer uses
// it to invalidate its result cache and update gauges.
type PublishObserver func(PublishInfo)

// SetPublishObserver installs (or, with nil, removes) the observer invoked
// after every epoch publication. Safe to call concurrently with publishes.
func (e *Engine) SetPublishObserver(obs PublishObserver) {
	if obs == nil {
		e.publishObs.Store(nil)
		return
	}
	e.publishObs.Store(&obs)
}

func (e *Engine) notifyPublish(info PublishInfo) {
	if p := e.publishObs.Load(); p != nil {
		(*p)(info)
	}
}

// MutationStats reports a mutator's cumulative activity.
type MutationStats struct {
	// Ops counts mutation operations applied since the last compaction.
	Ops int
	// PendingOps counts operations not yet visible to searches (applied
	// after the last Publish).
	PendingOps int
	// Publishes and Compactions count epoch publications by kind.
	Publishes   int64
	Compactions int64
}

// Mutator is the single-writer handle for live graph mutations. Mutations
// accumulate invisibly until Publish installs them as a new epoch snapshot
// — a copy-on-write overlay over the base CSR plus pre-merged posting lists
// for the affected keywords — so concurrent searches never observe a torn
// graph and pay nothing on the hot path while the delta is empty. A
// background compactor (or an explicit Compact call) merges a ripened delta
// into a fresh flat snapshot and retires the overlay epochs once their last
// pinned search drains.
//
// At most one Mutator may be open per engine (all methods are serialized by
// an internal lock; readers go through published epoch snapshots only), and
// mutation is mutually exclusive with sharding (EnableSharding).
type Mutator struct {
	eng *Engine
	opt MutatorOptions

	// mu serializes mutations, Publish and Compact (the compactor runs
	// concurrently with the caller's mutations).
	mu sync.Mutex

	// db / tb accumulate the graph and keyword deltas since the last
	// compaction; ix is the base index both are rooted at.
	db *graph.DeltaBuilder
	tb *text.OverlayBuilder
	ix *text.Index

	// oplog is the logical redo log of the delta (everything since the
	// last compaction), rooted at a base of baseNodes/baseEdges; SaveDelta
	// persists it and Replay reapplies a persisted log.
	oplog                []storage.DeltaOp
	baseNodes, baseEdges int

	// reweights are operator weight overrides (Reweight), reapplied after
	// every weight recomputation for the mutator's lifetime; rwDirty marks
	// overrides not yet published.
	reweights map[graph.NodeID]float64
	rwDirty   bool

	// avgDist/stddev are carried across publications: the distance sample
	// is statistical, and resampling would make post-mutation answers
	// incomparable to the pre-mutation engine.
	avgDist, stddev float64

	publishedOps int // delta ops visible to searches (last Publish)
	closed       bool

	wake chan struct{} // signals the compactor that the delta ripened
	stop chan struct{}
	done chan struct{}

	publishes   int64
	compactions int64
}

// NewMutator opens the engine's single mutation handle. If the current
// snapshot still carries an unmerged delta (a previous mutator closed
// without compacting), it is compacted first so the new delta roots at a
// flat base.
func (e *Engine) NewMutator(o MutatorOptions) (*Mutator, error) {
	e.mu.Lock()
	if e.mut != nil {
		e.mu.Unlock()
		return nil, fmt.Errorf("wikisearch: a mutator is already open")
	}
	if e.sharding.Load() != nil {
		e.mu.Unlock()
		return nil, fmt.Errorf("wikisearch: cannot open a mutator while sharding is enabled")
	}
	// Reserve the slot before the (possibly slow) inline compaction below.
	m := &Mutator{
		eng:       e,
		opt:       o.defaults(),
		reweights: map[graph.NodeID]float64{},
		wake:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	e.mut = m
	e.mu.Unlock()

	sn := e.snap()
	m.avgDist, m.stddev = sn.avgDist, sn.stddev
	g, ix := sn.g, sn.ix
	if g.HasOverlay() {
		g = g.Materialize()
		ix = text.BuildIndex(g)
		e.installEpoch(newSnapshot(g, ix, nil, sn.weights, sn.avgDist, sn.stddev))
	}
	m.db = graph.NewDeltaBuilder(g)
	m.tb = text.NewOverlayBuilder(ix)
	m.ix = ix
	m.baseNodes, m.baseEdges = g.NumNodes(), g.NumEdges()
	go m.compactLoop() // joined via m.done in Close
	return m, nil
}

// compactLoop is the background compactor: it sleeps until a Publish
// reports the delta ripened (opt.CompactAfterOps), merges it into a flat
// snapshot, and waits for the replaced overlay epochs to drain.
func (m *Mutator) compactLoop() {
	defer close(m.done)
	for {
		select {
		case <-m.stop:
			return
		case <-m.wake:
			m.Compact() //nolint:errcheck // benign: a concurrent Close wins the race
		}
	}
}

// Close stops the background compactor and releases the engine's mutation
// slot. Mutations applied but not published are discarded; the published
// state stays live (Save folds any remaining delta into the dump).
func (m *Mutator) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	close(m.stop)
	<-m.done
	m.eng.mu.Lock()
	if m.eng.mut == m {
		m.eng.mut = nil
	}
	m.eng.mu.Unlock()
	return nil
}

func (m *Mutator) checkOpen() error {
	if m.closed {
		return fmt.Errorf("wikisearch: mutator is closed")
	}
	return nil
}

// AddNode appends a node with the given label and description and returns
// its id (dense: the first added node gets the base graph's size). The node
// becomes searchable at the next Publish.
func (m *Mutator) AddNode(label, desc string) (NodeID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkOpen(); err != nil {
		return 0, err
	}
	v := m.db.AddNode(label, desc)
	m.tb.NodeAdded(v, label, desc)
	m.oplog = append(m.oplog, storage.DeltaOp{Kind: storage.DeltaAddNode, Label: label, Desc: desc})
	return v, nil
}

// AddEdge adds a from→to edge with the given relation label (interned on
// first use). Parallel identical edges are allowed, as in the builder.
func (m *Mutator) AddEdge(from, to NodeID, rel string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkOpen(); err != nil {
		return err
	}
	if err := m.db.AddEdge(from, to, m.db.Rel(rel)); err != nil {
		return err
	}
	m.oplog = append(m.oplog, storage.DeltaOp{Kind: storage.DeltaAddEdge, From: from, To: to, Rel: rel})
	return nil
}

// RemoveEdge removes one instance of the from→to edge with the given
// relation label; it errors if no such edge exists.
func (m *Mutator) RemoveEdge(from, to NodeID, rel string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkOpen(); err != nil {
		return err
	}
	r, ok := m.db.RelByName(rel)
	if !ok {
		return fmt.Errorf("wikisearch: unknown relation %q", rel)
	}
	if err := m.db.RemoveEdge(from, to, r); err != nil {
		return err
	}
	m.oplog = append(m.oplog, storage.DeltaOp{Kind: storage.DeltaRemoveEdge, From: from, To: to, Rel: rel})
	return nil
}

// SetKeywords replaces node v's label and description; the inverted index
// delta follows the text diff.
func (m *Mutator) SetKeywords(v NodeID, label, desc string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkOpen(); err != nil {
		return err
	}
	oldLabel, oldDesc := m.db.Label(v), m.db.Description(v)
	if err := m.db.SetText(v, label, desc); err != nil {
		return err
	}
	m.tb.NodeRetext(v, oldLabel, oldDesc, label, desc)
	m.oplog = append(m.oplog, storage.DeltaOp{Kind: storage.DeltaSetText, V: v, Label: label, Desc: desc})
	return nil
}

// Reweight overrides node v's normalized degree-of-summary weight (an
// operator knob: demote a hub the automatic weight underestimates). The
// override persists for the mutator's lifetime, reapplied after every
// recomputation; it takes effect at the next Publish.
func (m *Mutator) Reweight(v NodeID, w float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkOpen(); err != nil {
		return err
	}
	if int(v) < 0 || int(v) >= m.db.NumNodes() {
		return fmt.Errorf("wikisearch: reweight of unknown node %d", v)
	}
	if w < 0 || w > 1 {
		return fmt.Errorf("wikisearch: weight %v outside [0,1]", w)
	}
	m.reweights[v] = w
	m.rwDirty = true
	m.oplog = append(m.oplog, storage.DeltaOp{Kind: storage.DeltaReweight, V: v, W: w})
	return nil
}

// Stats reports the mutator's cumulative activity.
func (m *Mutator) Stats() MutationStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MutationStats{
		Ops:         len(m.oplog),
		PendingOps:  len(m.oplog) - m.publishedOps,
		Publishes:   m.publishes,
		Compactions: m.compactions,
	}
}

// Publish atomically installs every mutation applied so far as a new epoch
// snapshot: searches admitted after Publish returns see the new graph,
// in-flight searches finish on the epoch they pinned, and answers are never
// a torn mix. Publishing an unchanged delta is a no-op. Weights are fully
// recomputed (the min-max normalization is global, so any edge change can
// shift every weight); the distance statistics are carried over.
func (m *Mutator) Publish() (PublishInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkOpen(); err != nil {
		return PublishInfo{}, err
	}
	// Every mutation (including reweights) journals to the oplog, so an
	// unchanged length means there is nothing new to publish.
	if len(m.oplog) == m.publishedOps {
		cur := m.eng.EpochStats()
		return PublishInfo{Epoch: cur.Epoch, Ops: m.publishedOps}, nil
	}
	start := time.Now()
	g := m.db.Overlay()
	var ixo *text.Overlay
	if !m.tb.Empty() {
		ixo = m.tb.Build()
	}
	w := m.recomputeWeights(g)
	sn := newSnapshot(g, m.ix, ixo, w, m.avgDist, m.stddev)
	info := PublishInfo{Ops: len(m.oplog), Duration: 0}
	info.DeltaNodes, info.DeltaPatched, info.DeltaEdges = g.DeltaStats()
	if ixo != nil {
		info.DeltaTerms = ixo.NumAffected()
	}
	info.Epoch = m.eng.installEpoch(sn)
	info.Duration = time.Since(start)
	m.publishedOps = len(m.oplog)
	m.rwDirty = false
	m.publishes++
	// A published graph change invalidates warm shard partitions cached for
	// the pre-mutation graph.
	m.eng.closeShardCache()
	m.eng.notifyPublish(info)
	if m.opt.CompactAfterOps > 0 && len(m.oplog) >= m.opt.CompactAfterOps {
		select {
		case m.wake <- struct{}{}:
		default:
		}
	}
	return info, nil
}

// Compact publishes any pending mutations folded into a fresh flat snapshot
// — base CSR rebuilt, index rebuilt, no overlays — resets the delta, and
// blocks until every replaced epoch drains (the last search pinned to a
// pre-compaction snapshot finishes). Safe to call concurrently with
// searches; the background compactor calls it automatically.
func (m *Mutator) Compact() (PublishInfo, error) {
	m.mu.Lock()
	if err := m.checkOpen(); err != nil {
		m.mu.Unlock()
		return PublishInfo{}, err
	}
	if m.db.Empty() && !m.rwDirty && !m.eng.snap().g.HasOverlay() {
		cur := m.eng.EpochStats()
		m.mu.Unlock()
		return PublishInfo{Epoch: cur.Epoch, Compacted: true}, nil
	}
	start := time.Now()
	g := m.db.Overlay().Materialize()
	ix := text.BuildIndex(g)
	w := m.recomputeWeights(g)
	info := PublishInfo{Compacted: true}
	info.Epoch = m.eng.installEpoch(newSnapshot(g, ix, nil, w, m.avgDist, m.stddev))
	// Root the next delta at the compacted base.
	m.db = graph.NewDeltaBuilder(g)
	m.tb = text.NewOverlayBuilder(ix)
	m.ix = ix
	m.oplog = nil
	m.baseNodes, m.baseEdges = g.NumNodes(), g.NumEdges()
	m.publishedOps = 0
	m.rwDirty = false
	m.publishes++
	m.compactions++
	info.Duration = time.Since(start)
	m.eng.closeShardCache()
	m.mu.Unlock()

	// Outside the writer lock: draining depends only on searches unpinning.
	m.eng.waitEpochsDrained()
	m.eng.notifyPublish(info)
	return info, nil
}

// DeltaLog is a persisted mutation batch: the logical redo log of a
// mutator's delta, rooted at a named base snapshot. See Mutator.SaveDelta.
type DeltaLog = storage.DeltaLog

// DeltaOp is one recorded mutation operation of a DeltaLog.
type DeltaOp = storage.DeltaOp

// LoadDeltaFile reads a delta segment written by Mutator.SaveDelta.
func LoadDeltaFile(path string) (*DeltaLog, error) { return storage.LoadDeltaFile(path) }

// SaveDelta persists the mutator's delta — every operation applied since
// the last compaction, published or not — as a CRC-guarded segment written
// atomically and durably. Replaying it onto the same compacted base (after
// a crash or restart: LoadEngine + NewMutator + Replay) reproduces the
// mutated graph exactly; Compact empties the log.
func (m *Mutator) SaveDelta(path string) error {
	m.mu.Lock()
	l := &DeltaLog{
		Name:      m.eng.name,
		BaseNodes: m.baseNodes,
		BaseEdges: m.baseEdges,
		Ops:       append([]DeltaOp(nil), m.oplog...),
	}
	m.mu.Unlock()
	return storage.SaveDeltaFile(path, l)
}

// Replay applies a persisted delta log. The mutator's base must match the
// log's (same node and edge count): replay onto a different snapshot would
// silently corrupt ids. Replayed operations accumulate like fresh ones —
// they are journaled again and become visible at the next Publish.
func (m *Mutator) Replay(l *DeltaLog) error {
	m.mu.Lock()
	bn, be := m.baseNodes, m.baseEdges
	m.mu.Unlock()
	if l.BaseNodes != bn || l.BaseEdges != be {
		return fmt.Errorf("wikisearch: delta log base (%d nodes, %d edges) does not match the mutator base (%d, %d)",
			l.BaseNodes, l.BaseEdges, bn, be)
	}
	for i := range l.Ops {
		op := &l.Ops[i]
		var err error
		switch op.Kind {
		case storage.DeltaAddNode:
			_, err = m.AddNode(op.Label, op.Desc)
		case storage.DeltaAddEdge:
			err = m.AddEdge(op.From, op.To, op.Rel)
		case storage.DeltaRemoveEdge:
			err = m.RemoveEdge(op.From, op.To, op.Rel)
		case storage.DeltaSetText:
			err = m.SetKeywords(op.V, op.Label, op.Desc)
		case storage.DeltaReweight:
			err = m.Reweight(op.V, op.W)
		default:
			err = fmt.Errorf("wikisearch: unknown delta op kind %d", op.Kind)
		}
		if err != nil {
			return fmt.Errorf("wikisearch: replay op %d (%v): %w", i, op.Kind, err)
		}
	}
	return nil
}

// recomputeWeights computes the normalized weights of g and reapplies the
// operator overrides.
func (m *Mutator) recomputeWeights(g *Graph) []float64 {
	pool := parallel.NewPool(m.opt.Threads)
	defer pool.Close()
	w := weight.Compute(g, pool)
	for v, wt := range m.reweights {
		if int(v) < len(w) {
			w[v] = wt
		}
	}
	return w
}
