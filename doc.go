// Package wikisearch is a parallel keyword search engine for knowledge
// graphs, reproducing "An Efficient Parallel Keyword Search Engine on
// Knowledge Graphs" (Yang, Agrawal, Jagadish, Tung, Wu — ICDE 2019).
//
// Instead of approximating Group Steiner Trees, the engine answers a
// keyword query with Central Graphs: for each keyword a BFS instance starts
// from every node containing it, all instances expanding in lockstep; a
// node hit by every instance is a Central Node, and the union of the
// hitting paths into it is its Central Graph — a graph-shaped answer that
// admits cycles and multiple paths per keyword. A degree-of-summary node
// weight delays uninformative hub nodes ("human", "conference") through a
// minimum activation level tunable at query time (α), answers are pruned by
// a keyword-co-occurrence level-cover strategy and ranked by
// S(C) = d(C)^λ·Σw.
//
// The two-stage search is lock-free and runs sequentially, on a multi-core
// worker pool (CPU-Par), on a lock-based dynamic-memory baseline
// (CPU-Par-d), or on a simulated SIMT device (GPU-Par); all variants return
// identical results. BANKS-I and BANKS-II baselines are included for
// comparison.
//
// Basic usage:
//
//	eng, err := wikisearch.LoadEngine("wiki2018-sim.wskb", wikisearch.EngineOptions{})
//	if err != nil { ... }
//	res, err := eng.Search(ctx, wikisearch.Query{Text: "sql rdf knowledge base"})
//	for _, a := range res.Answers {
//		fmt.Println(a.CentralLabel, a.Score)
//	}
//
// Search is the single entry point for every variant (Query.Variant selects
// CPUPar, Sequential, GPU, the lock-based CPU-Par-d, or the ExactGST and
// BANKS baselines). Under concurrent load, EnableBatching coalesces
// compatible searches into one shared bottom-up expansion with answers
// bit-identical to solo execution; see DESIGN.md §9.
package wikisearch
