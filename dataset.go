package wikisearch

import (
	"fmt"

	"wikisearch/internal/gen"
)

// DatasetConfig selects or customizes a synthetic knowledge-base
// generation (the stand-ins for the paper's Wikidata dumps; see DESIGN.md).
type DatasetConfig struct {
	// Preset selects a built-in configuration: "wiki2017-sim",
	// "wiki2018-sim" or "tiny-sim". Empty means fully custom.
	Preset string
	// Name overrides the dataset name.
	Name string
	// Nodes / AvgDegree / VocabSize override the preset when > 0.
	Nodes     int
	AvgDegree float64
	VocabSize int
	// Seed overrides the preset seed when != 0.
	Seed int64
	// PlantEffectiveness adds the Q1–Q11 ground-truth plantings.
	PlantEffectiveness bool
}

// PlantedQuery is a generated effectiveness query with its ground truth:
// an answer is relevant iff it contains one of Cores.
type PlantedQuery struct {
	ID       string
	Keywords []string
	Cores    []NodeID
	Decoys   []NodeID
}

// Dataset is a generated knowledge base plus its effectiveness ground
// truth.
type Dataset struct {
	Name    string
	Graph   *Graph
	Planted []PlantedQuery
}

// GenerateDataset builds a synthetic Wikidata-like knowledge base.
// Generation is deterministic in the seed.
func GenerateDataset(c DatasetConfig) (*Dataset, error) {
	var cfg gen.Config
	switch c.Preset {
	case "wiki2017-sim":
		cfg = gen.Wiki2017Sim()
	case "wiki2018-sim":
		cfg = gen.Wiki2018Sim()
	case "tiny-sim":
		cfg = gen.TinySim()
	case "":
		cfg = gen.Config{PlantEffectiveness: c.PlantEffectiveness}
	default:
		return nil, fmt.Errorf("wikisearch: unknown preset %q", c.Preset)
	}
	if c.Name != "" {
		cfg.Name = c.Name
	}
	if c.Nodes > 0 {
		cfg.Nodes = c.Nodes
	}
	if c.AvgDegree > 0 {
		cfg.AvgDegree = c.AvgDegree
	}
	if c.VocabSize > 0 {
		cfg.VocabSize = c.VocabSize
	}
	if c.Seed != 0 {
		cfg.Seed = c.Seed
	}
	if c.PlantEffectiveness {
		cfg.PlantEffectiveness = true
	}
	kb := gen.Generate(cfg)
	ds := &Dataset{Name: kb.Name, Graph: kb.Graph}
	for _, p := range kb.Planted {
		ds.Planted = append(ds.Planted, PlantedQuery{
			ID:       p.ID,
			Keywords: p.Keywords,
			Cores:    p.Cores,
			Decoys:   p.Decoys,
		})
	}
	return ds, nil
}
