package wikisearch

import (
	"sort"
	"sync"
	"sync/atomic"

	"wikisearch/internal/graph"
	"wikisearch/internal/parallel"
	"wikisearch/internal/text"
	"wikisearch/internal/weight"
)

// This file holds the engine's epoch machinery for live graph mutations.
//
// Everything a search reads — graph, weights, inverted index (plus its
// delta overlay), distance statistics, activation-level caches — lives in
// one immutable snapshot. The engine holds an atomic pointer to the current
// epoch (snapshot + pin count); each search pins the epoch for its lifetime
// with one atomic increment, so readers never take a lock and never observe
// a torn mix of two epochs. Publishing a new snapshot swaps the pointer and
// retires the old epoch; it is fully drained once its last pinned search
// unpins, at which point the compactor may drop it.

// snapshot is the immutable per-epoch view a search runs against. The level
// caches are lazily filled but append-only per α (see levelEntry); all other
// fields are frozen at publication.
type snapshot struct {
	g       *Graph
	ix      *text.Index
	ixo     *text.Overlay // merged postings for delta-affected terms; nil when none
	weights []float64
	avgDist float64
	stddev  float64

	mu         sync.Mutex
	levelCache map[float64]*levelEntry // α → per-node activation levels
	zeroLv     []uint8                 // all-zero levels for the activation ablation
}

func newSnapshot(g *Graph, ix *text.Index, ixo *text.Overlay, w []float64, avgDist, stddev float64) *snapshot {
	return &snapshot{
		g: g, ix: ix, ixo: ixo, weights: w,
		avgDist: avgDist, stddev: stddev,
		levelCache: map[float64]*levelEntry{},
	}
}

// lookupTerm resolves a normalized term through the delta overlay first,
// then the base index. Allocation-free: overlay postings are pre-merged at
// publication.
func (sn *snapshot) lookupTerm(term string) []graph.NodeID {
	if sn.ixo != nil {
		if p, ok := sn.ixo.Postings(term); ok {
			return p
		}
	}
	return sn.ix.LookupTerm(term)
}

// lookup resolves a raw keyword (possibly multi-term) to the union of its
// terms' postings, overlay-aware. Mirrors text.Index.Lookup.
func (sn *snapshot) lookup(raw string) []graph.NodeID {
	terms := text.Normalize(raw)
	switch len(terms) {
	case 0:
		return nil
	case 1:
		return sn.lookupTerm(terms[0])
	}
	set := map[graph.NodeID]struct{}{}
	for _, t := range terms {
		for _, v := range sn.lookupTerm(t) {
			set[v] = struct{}{}
		}
	}
	out := make([]graph.NodeID, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// vocabSize returns the snapshot's keyword vocabulary size, adjusted for
// terms the delta introduced or emptied.
func (sn *snapshot) vocabSize() int {
	n := sn.ix.NumTerms()
	if sn.ixo != nil {
		n += sn.ixo.TermsDelta()
	}
	return n
}

// activationLevels returns (computing and caching on first use) the
// snapshot's per-node minimum activation levels for α. Concurrent first
// requests for the same α coordinate on one levelEntry, so the vector is
// computed exactly once per epoch; eviction replaces the map but never an
// entry a caller already holds.
func (sn *snapshot) activationLevels(alpha float64, threads int, computes *atomic.Int64) []uint8 {
	sn.mu.Lock()
	ent, ok := sn.levelCache[alpha]
	if !ok {
		if len(sn.levelCache) >= 16 { // bound the cache; α values are few in practice
			sn.levelCache = map[float64]*levelEntry{}
		}
		ent = &levelEntry{}
		sn.levelCache[alpha] = ent
	}
	sn.mu.Unlock()
	ent.once.Do(func() {
		pool := parallel.NewPool(threads)
		defer pool.Close()
		ent.lv = weight.Levels(sn.weights, sn.avgDist, alpha, pool)
		computes.Add(1)
	})
	return ent.lv
}

// zeroLevels returns (caching) an all-zero activation vector for the
// DisableActivation ablation.
func (sn *snapshot) zeroLevels() []uint8 {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if sn.zeroLv == nil {
		sn.zeroLv = make([]uint8, sn.g.NumNodes())
	}
	return sn.zeroLv
}

// epoch binds one published snapshot to its reader pin count. Pin/unpin are
// single atomic adds — no locks on the search hot path — and the epoch is
// fully drained (safe to drop) once it is retired and the count hits zero.
type epoch struct {
	id   uint64
	snap *snapshot

	pins      atomic.Int64
	retired   atomic.Bool
	drained   chan struct{}
	drainOnce sync.Once
}

// pin adds a reader to an epoch already protected from draining (the caller
// holds a pin, or the epoch is still current and the caller just verified
// the pointer — see Engine.pinEpoch).
func (ep *epoch) pin() { ep.pins.Add(1) }

// unpin releases a reader; the last reader of a retired epoch marks it
// drained. Allocation-free.
func (ep *epoch) unpin() {
	if ep.pins.Add(-1) == 0 && ep.retired.Load() {
		ep.drainOnce.Do(func() { close(ep.drained) })
	}
}

// retire marks the epoch replaced. With no readers left it drains
// immediately; otherwise the last unpin drains it. The atomic orderings are
// sequentially consistent, so either retire observes pins==0 or the racing
// unpin observes retired==true (or both — drainOnce makes that benign).
func (ep *epoch) retire() {
	ep.retired.Store(true)
	if ep.pins.Load() == 0 {
		ep.drainOnce.Do(func() { close(ep.drained) })
	}
}

// pinEpoch pins and returns the current epoch. The verify-after-pin loop
// closes the race with a concurrent publish: if the pointer moved while we
// were pinning, the pin may have landed on a retiring epoch — release and
// retry. Lock-free and allocation-free.
func (e *Engine) pinEpoch() *epoch {
	for {
		ep := e.epoch.Load()
		ep.pin()
		if e.epoch.Load() == ep {
			return ep
		}
		ep.unpin()
	}
}

// snap returns the current snapshot without pinning — for accessors that
// read a single consistent view but do not hold it across a traversal.
func (e *Engine) snap() *snapshot { return e.epoch.Load().snap }

// installEpoch publishes sn as the next epoch and retires the previous one
// (if any). Returns the new epoch id. Serialized by pubMu so concurrent
// publishers cannot interleave swap and retire.
func (e *Engine) installEpoch(sn *snapshot) uint64 {
	e.pubMu.Lock()
	defer e.pubMu.Unlock()
	id := e.epochSeq.Add(1)
	ne := &epoch{id: id, snap: sn, drained: make(chan struct{})}
	old := e.epoch.Swap(ne)
	if old != nil {
		e.mu.Lock()
		e.oldEpochs = append(e.oldEpochs, old)
		e.mu.Unlock()
		old.retire()
	}
	e.sweepEpochs()
	return id
}

// sweepEpochs drops fully drained replaced epochs from the bookkeeping list
// and counts them. Cheap; called on publish and by stats readers.
func (e *Engine) sweepEpochs() {
	e.mu.Lock()
	kept := e.oldEpochs[:0]
	for _, ep := range e.oldEpochs {
		select {
		case <-ep.drained:
			e.epochsRetired.Add(1)
		default:
			kept = append(kept, ep)
		}
	}
	for i := len(kept); i < len(e.oldEpochs); i++ {
		e.oldEpochs[i] = nil
	}
	e.oldEpochs = kept
	e.mu.Unlock()
}

// waitEpochsDrained blocks until every replaced epoch published before the
// call has drained — the compactor uses it to retire pre-compaction state
// only after the last pinned search on it finishes.
func (e *Engine) waitEpochsDrained() {
	e.mu.Lock()
	old := make([]*epoch, len(e.oldEpochs))
	copy(old, e.oldEpochs)
	e.mu.Unlock()
	for _, ep := range old {
		<-ep.drained
	}
	e.sweepEpochs()
}

// Epoch returns the id of the current search epoch. It starts at 1 and
// increments on every Mutator publish or compaction.
func (e *Engine) Epoch() uint64 { return e.epoch.Load().id }

// EpochStats describes the engine's epoch and delta state; served by
// /v1/stats and the metrics gauges.
type EpochStats struct {
	// Epoch is the current epoch id.
	Epoch uint64
	// Pinned is the number of searches currently pinning the current epoch.
	Pinned int64
	// OldLive is the number of replaced epochs still pinned by in-flight
	// searches.
	OldLive int
	// Retired counts replaced epochs that fully drained.
	Retired int64
	// DeltaNodes / DeltaPatched / DeltaEdges describe the current
	// snapshot's unmerged graph overlay (zero after compaction).
	DeltaNodes   int
	DeltaPatched int
	DeltaEdges   int
	// DeltaTerms is the number of index terms covered by the keyword
	// overlay (zero after compaction).
	DeltaTerms int
}

// EpochStats snapshots the epoch machinery state.
func (e *Engine) EpochStats() EpochStats {
	e.sweepEpochs()
	ep := e.epoch.Load()
	st := EpochStats{
		Epoch:   ep.id,
		Pinned:  ep.pins.Load(),
		Retired: e.epochsRetired.Load(),
	}
	e.mu.Lock()
	st.OldLive = len(e.oldEpochs)
	e.mu.Unlock()
	st.DeltaNodes, st.DeltaPatched, st.DeltaEdges = ep.snap.g.DeltaStats()
	if ep.snap.ixo != nil {
		st.DeltaTerms = ep.snap.ixo.NumAffected()
	}
	return st
}
