package wikisearch

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"wikisearch/internal/banks"
	"wikisearch/internal/core"
	"wikisearch/internal/device"
	"wikisearch/internal/graph"
	"wikisearch/internal/gst"
	"wikisearch/internal/text"
)

// Variant selects the search implementation; all Central Graph variants
// return identical answers and differ only in execution strategy.
type Variant int

// The implementations evaluated in the paper's §VI, plus the two baseline
// systems it compares against.
const (
	// CPUPar is the lock-free multi-core two-stage algorithm (default).
	CPUPar Variant = iota
	// Sequential runs CPU-Par with one thread (the paper's Tnum=1).
	Sequential
	// CPUParD is the lock-based dynamic-memory comparison point.
	CPUParD
	// GPUPar runs the bottom-up stage on the simulated SIMT device.
	GPUPar
	// ExactGST solves the query's Group Steiner Tree problem exactly with
	// the DPBF dynamic program (the paper's reference [7]); the result is
	// in Result.GST.
	ExactGST
	// BANKS runs the BANKS baseline (BANKS-II when Query.Bidirectional is
	// set, BANKS-I otherwise); the result is in Result.Banks.
	BANKS
)

// String names the variant as the paper does.
func (v Variant) String() string {
	switch v {
	case CPUPar:
		return "CPU-Par"
	case Sequential:
		return "Sequential"
	case CPUParD:
		return "CPU-Par-d"
	case GPUPar:
		return "GPU-Par"
	case ExactGST:
		return "Exact-GST"
	case BANKS:
		return "BANKS"
	}
	return "Unknown"
}

// Query is one keyword search request (parameters of Table III).
type Query struct {
	// Text is the raw keyword query; it is tokenized, stopword-filtered
	// and stemmed, and duplicate terms collapse.
	Text string
	// TopK is k (default 20).
	TopK int
	// Alpha tunes the activation mapping at query time (default 0.1).
	Alpha float64
	// Lambda is the depth exponent of the scoring function (default 0.2).
	Lambda float64
	// Threads is Tnum (default GOMAXPROCS; forced to 1 by Sequential).
	Threads int
	// MaxLevel bounds BFS depth (default 32).
	MaxLevel int
	// Variant selects the implementation (default CPUPar).
	Variant Variant
	// Device overrides the simulated device for GPUPar (default the
	// paper's GTX 1080 Ti shape).
	Device *device.Device
	// DisableLevelCover skips the level-cover pruning (§V-C) — an
	// ablation knob: answers keep every extracted hitting-path node.
	DisableLevelCover bool
	// DisableActivation ignores minimum activation levels (§IV) — an
	// ablation knob: the search degrades to plain multi-source BFS
	// instances, which the paper warns yields "arbitrary and meaningless"
	// central graphs on weighted knowledge bases.
	DisableActivation bool
	// MaxStates caps the DP states of the ExactGST variant (0 = unbounded).
	MaxStates int
	// Bidirectional selects BANKS-II over BANKS-I for the BANKS variant.
	Bidirectional bool
	// MaxVisits caps the iterator visits of the BANKS variant (0 = unbounded).
	MaxVisits int
}

// Validate rejects out-of-range query knobs. Zero values mean "use the
// default" and always pass; the engine and the HTTP layer share these
// bounds.
func (q Query) Validate() error {
	if q.TopK != 0 && (q.TopK < 1 || q.TopK > 200) {
		return fmt.Errorf("wikisearch: k must be in [1,200]")
	}
	if q.Alpha != 0 && (q.Alpha < 0 || q.Alpha >= 1) {
		return fmt.Errorf("wikisearch: alpha must be in (0,1)")
	}
	if q.Lambda != 0 && (q.Lambda < 0 || q.Lambda > 1) {
		return fmt.Errorf("wikisearch: lambda must be in (0,1]")
	}
	if q.MaxLevel != 0 && (q.MaxLevel < 1 || q.MaxLevel > 250) {
		return fmt.Errorf("wikisearch: max level must be in [1,250]")
	}
	switch q.Variant {
	case CPUPar, Sequential, CPUParD, GPUPar, ExactGST, BANKS:
	default:
		return fmt.Errorf("wikisearch: unknown variant %d", q.Variant)
	}
	return nil
}

// AnswerNode is one node of an answer graph, with resolved text.
type AnswerNode struct {
	ID          NodeID
	Label       string
	Description string
	// Keywords are the query terms this node itself contains.
	Keywords []string
	// HitLevels[i] is the hitting level for term i (-1 if never hit).
	HitLevels []int
	// Weight is the node's degree-of-summary weight.
	Weight float64
	// IsCentral marks the Central Node.
	IsCentral bool
}

// AnswerEdge is one hitting-path edge, oriented keyword-source → Central
// Node; Forward reports whether the knowledge graph stores it as From→To.
type AnswerEdge struct {
	From, To NodeID
	Rel      string
	Forward  bool
	// Keywords are the query terms whose hitting paths traverse the edge.
	Keywords []string
}

// Answer is one Central Graph answer.
type Answer struct {
	Central      NodeID
	CentralLabel string
	Depth        int
	Score        float64
	Nodes        []AnswerNode
	Edges        []AnswerEdge
	PrunedNodes  int
}

// NodeIDs returns the answer's node ids.
func (a *Answer) NodeIDs() []NodeID {
	out := make([]NodeID, len(a.Nodes))
	for i := range a.Nodes {
		out[i] = a.Nodes[i].ID
	}
	return out
}

// Result is a search outcome with the per-phase profile of Fig. 6/7.
type Result struct {
	// Terms are the normalized query terms, one BFS instance each.
	Terms   []string
	Answers []Answer
	// Depth is d of the top-(k,d) problem.
	Depth int
	// Candidates counts Central Nodes found by the bottom-up stage.
	Candidates int
	// Phases maps phase name → duration; Total sums them.
	Phases map[string]time.Duration
	Total  time.Duration
	// TransferSeconds is the simulated device→host matrix transfer
	// (GPU-Par only).
	TransferSeconds float64
	// GST holds the ExactGST variant's trees (nil otherwise).
	GST *GSTResult
	// Banks holds the BANKS variant's trees (nil otherwise).
	Banks *BanksResult
	// Shard describes the sharded execution when the search ran on the
	// sharded runtime (EnableSharding); nil on the solo path.
	Shard *ShardInfo
}

// Search answers a keyword query; it is the engine's single entry point for
// every variant. The search aborts between levels if ctx is cancelled (the
// online service uses this for request deadlines); a nil ctx runs detached.
// The outcome — including errors — is reported to the observer installed
// with SetSearchObserver, which the serving layer uses to feed per-phase
// latency histograms. When batching is enabled (EnableBatching), concurrent
// compatible searches may be coalesced into one shared bottom-up expansion;
// results are unaffected.
func (e *Engine) Search(ctx context.Context, q Query) (*Result, error) {
	res, err := e.searchContext(ctx, q)
	e.observe(q, res, err)
	return res, err
}

func (e *Engine) searchContext(ctx context.Context, q Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	// Pin the current epoch for the whole search: one atomic add in, one
	// out. Everything below reads the pinned snapshot, never the engine's
	// epoch pointer, so a concurrent publish can never tear the view.
	ep := e.pinEpoch()
	defer ep.unpin()
	sn := ep.snap
	start := startNow()
	switch q.Variant {
	case ExactGST:
		res, err := e.searchGST(sn, q)
		e.collectTrace(ctx, q, termsOf(res), res, err, traceMeta{start: start, epoch: ep.id})
		return res, err
	case BANKS:
		res, err := e.searchBanks(sn, q)
		e.collectTrace(ctx, q, termsOf(res), res, err, traceMeta{start: start, epoch: ep.id})
		return res, err
	}
	in, terms, err := sn.prepare(q.Text)
	if err != nil {
		return nil, err
	}
	if co := e.sharding.Load(); co != nil && shardEligible(q.Variant) {
		return e.runSharded(ctx, co, ep, q, in, terms, start)
	}
	if b := e.batcher.Load(); b != nil && b.eligible(q, len(terms)) {
		return b.do(ctx, ep, q, in, terms, start)
	}
	return e.runPrepared(ctx, ep, q, in, terms, start)
}

// termsOf extracts a result's normalized terms for trace collection (nil on
// error results).
func termsOf(res *Result) []string {
	if res == nil {
		return nil
	}
	return res.Terms
}

// params resolves q's knobs into core parameters against one snapshot:
// defaults applied, thread count concretized (Sequential forces one
// thread). The batcher keys batch compatibility on the resolved values
// plus the epoch id.
func (sn *snapshot) params(q Query) core.Params {
	if q.Threads <= 0 {
		q.Threads = runtime.GOMAXPROCS(0)
	}
	p := core.Params{
		TopK:              q.TopK,
		Alpha:             q.Alpha,
		Lambda:            q.Lambda,
		AvgDist:           sn.avgDist,
		MaxLevel:          q.MaxLevel,
		Threads:           q.Threads,
		DisableLevelCover: q.DisableLevelCover,
	}.Defaults()
	if q.Variant == Sequential {
		p.Threads = 1
	}
	return p
}

// runPrepared executes a prepared Central Graph query solo — the path every
// search took before batching, and the batcher's fallback for batches of
// one (which threads its coalescing wait through start). The caller holds a
// pin on ep for the duration.
func (e *Engine) runPrepared(ctx context.Context, ep *epoch, q Query, in core.Input, terms []string, start searchStart) (*Result, error) {
	sn := ep.snap
	p := sn.params(q)
	if ctx != nil && ctx != context.Background() {
		p.Ctx = ctx
	}
	if q.DisableActivation {
		in.Levels = sn.zeroLevels()
	} else {
		in.Levels = sn.activationLevels(p.Alpha, p.Threads, &e.levelComputes)
	}

	var (
		res      *core.Result
		transfer float64
		err      error
		m        = traceMeta{start: start, groupCols: len(in.Sources), epoch: ep.id}
	)
	switch q.Variant {
	case CPUPar, Sequential:
		st := e.acquireState()
		st.SetTracing(e.TracingEnabled())
		res, err = st.Search(in, p)
		m.events, m.dropped = st.DrainTrace(nil)
		e.releaseState(st)
	case CPUParD:
		res, err = core.SearchDynamic(in, p)
	case GPUPar:
		dev := q.Device
		if dev == nil {
			dev = device.GTX1080Ti()
		}
		var gres *core.GPUResult
		gres, err = core.SearchGPU(in, p, dev)
		if gres != nil {
			res = &gres.Result
			transfer = gres.TransferSeconds
		}
	default:
		return nil, fmt.Errorf("wikisearch: unknown variant %d", q.Variant)
	}
	if err != nil {
		e.collectTrace(ctx, q, terms, nil, err, m)
		return nil, err
	}
	out := sn.resolve(terms, res, transfer)
	e.collectTrace(ctx, q, terms, out, nil, m)
	return out, nil
}

// prepare resolves the raw query into a core.Input (minus activation
// levels, which depend on α) against one pinned snapshot. Term lookups go
// through the delta overlay, so mutated keywords resolve correctly before
// compaction.
func (sn *snapshot) prepare(raw string) (core.Input, []string, error) {
	terms := text.QueryTerms(raw)
	if len(terms) == 0 {
		return core.Input{}, nil, fmt.Errorf("wikisearch: query %q has no keywords after normalization", raw)
	}
	if len(terms) > core.MaxKeywords {
		return core.Input{}, nil, fmt.Errorf("wikisearch: query has %d keywords; maximum is %d", len(terms), core.MaxKeywords)
	}
	sources := make([][]graph.NodeID, len(terms))
	for i, t := range terms {
		sources[i] = sn.lookupTerm(t)
		if len(sources[i]) == 0 {
			return core.Input{}, nil, fmt.Errorf("wikisearch: keyword %q matches no nodes", t)
		}
	}
	return core.Input{
		G:       sn.g,
		Weights: sn.weights,
		Terms:   terms,
		Sources: sources,
	}, terms, nil
}

// resolve converts a core result into the public, text-resolved form.
func (sn *snapshot) resolve(terms []string, res *core.Result, transfer float64) *Result {
	out := &Result{
		Terms:           terms,
		Depth:           res.DepthD,
		Candidates:      res.CentralCandidates,
		Phases:          map[string]time.Duration{},
		Total:           res.Profile.Total(),
		TransferSeconds: transfer,
	}
	for ph := core.Phase(0); int(ph) < len(res.Profile.Phases); ph++ {
		// The sharded-only phases (exchange, merge) appear only when a
		// sharded run spent time in them, so solo responses are unchanged.
		if d := res.Profile.Phases[ph]; d > 0 || ph <= core.PhaseTopDown {
			out.Phases[ph.String()] = d
		}
	}
	for _, a := range res.Answers {
		pa := Answer{
			Central:      a.Central,
			CentralLabel: sn.g.Label(a.Central),
			Depth:        a.Depth,
			Score:        a.Score,
			PrunedNodes:  a.PrunedNodes,
		}
		for _, n := range a.Nodes {
			an := AnswerNode{
				ID:          n.ID,
				Label:       sn.g.Label(n.ID),
				Description: sn.g.Description(n.ID),
				Weight:      sn.weights[n.ID],
				IsCentral:   n.ID == a.Central,
			}
			for i, t := range terms {
				if n.Contains&(1<<uint(i)) != 0 {
					an.Keywords = append(an.Keywords, t)
				}
			}
			an.HitLevels = make([]int, len(terms))
			for i, h := range n.HitLevels {
				if h == core.Infinity {
					an.HitLevels[i] = -1
				} else {
					an.HitLevels[i] = int(h)
				}
			}
			pa.Nodes = append(pa.Nodes, an)
		}
		for _, ed := range a.Edges {
			pe := AnswerEdge{
				From:    ed.From,
				To:      ed.To,
				Rel:     sn.g.RelName(ed.Rel),
				Forward: ed.Forward,
			}
			for i, t := range terms {
				if ed.Keywords&(1<<uint(i)) != 0 {
					pe.Keywords = append(pe.Keywords, t)
				}
			}
			pa.Edges = append(pa.Edges, pe)
		}
		out.Answers = append(out.Answers, pa)
	}
	return out
}

// BanksTree is one BANKS baseline answer tree.
type BanksTree struct {
	Root      NodeID
	RootLabel string
	Score     float64
	Nodes     []NodeID
	// Paths[i] is the root → keyword-i leaf path.
	Paths [][]NodeID
}

// BanksResult is the outcome of a baseline search.
type BanksResult struct {
	Terms   []string
	Trees   []BanksTree
	Visited int
	Elapsed time.Duration
}

// GSTTree is one exact Group Steiner Tree answer.
type GSTTree struct {
	Root      NodeID
	RootLabel string
	Cost      float64
	Nodes     []NodeID
	// Edges are (child, parent) pairs oriented toward the root.
	Edges [][2]NodeID
}

// GSTResult is the outcome of an exact Group Steiner Tree search.
type GSTResult struct {
	Terms   []string
	Trees   []GSTTree
	Popped  int // DP states processed
	Elapsed time.Duration
}

// searchGST runs the ExactGST variant: the DPBF dynamic program of Ding et
// al., ICDE'07 — the paper's reference [7]. Exponential in the number of
// keywords (≤ 12); useful as ground truth and to reproduce the paper's
// argument that exact GST is not interactive ("this process is rather
// slow").
func (e *Engine) searchGST(sn *snapshot, q Query) (*Result, error) {
	in, terms, err := sn.prepare(q.Text)
	if err != nil {
		return nil, err
	}
	topK := q.TopK
	if topK <= 0 {
		topK = 20
	}
	start := time.Now()
	res, err := gst.Search(sn.g, sn.weights, in.Sources, gst.Options{K: topK, MaxStates: q.MaxStates})
	if err != nil {
		return nil, err
	}
	out := &GSTResult{Terms: terms, Popped: res.Popped, Elapsed: time.Since(start)}
	for _, t := range res.Trees {
		out.Trees = append(out.Trees, GSTTree{
			Root:      t.Root,
			RootLabel: sn.g.Label(t.Root),
			Cost:      t.Cost,
			Nodes:     t.Nodes,
			Edges:     t.Edges,
		})
	}
	return &Result{Terms: terms, Total: out.Elapsed, GST: out}, nil
}

// searchBanks runs the BANKS variant, a baseline GST-approximation search:
// BANKS-II when q.Bidirectional is set (the paper's comparison system),
// BANKS-I otherwise.
func (e *Engine) searchBanks(sn *snapshot, q Query) (*Result, error) {
	in, terms, err := sn.prepare(q.Text)
	if err != nil {
		return nil, err
	}
	topK := q.TopK
	if topK <= 0 {
		topK = 20
	}
	opts := banks.Options{K: topK, MaxVisits: q.MaxVisits}
	start := time.Now()
	var res *banks.Result
	if q.Bidirectional {
		res = banks.SearchBANKS2(sn.g, sn.weights, in.Sources, opts)
	} else {
		res = banks.SearchBANKS1(sn.g, sn.weights, in.Sources, opts)
	}
	out := &BanksResult{Terms: terms, Visited: res.Visited, Elapsed: time.Since(start)}
	for _, t := range res.Trees {
		out.Trees = append(out.Trees, BanksTree{
			Root:      t.Root,
			RootLabel: sn.g.Label(t.Root),
			Score:     t.Score,
			Nodes:     t.Nodes,
			Paths:     t.Paths,
		})
	}
	return &Result{Terms: terms, Total: out.Elapsed, Banks: out}, nil
}
