package wikisearch

import (
	"context"
	"testing"
)

// The deprecated pre-v1 entry points (compat.go) must keep delegating to
// the unified Search until their v2 removal; this is their only caller.

// TestDeprecatedWrappers: the pre-v1 entry points still work and agree
// with the unified API.
func TestDeprecatedWrappers(t *testing.T) {
	eng := newTestEngine(t)
	a, err := eng.SearchBackground(Query{Text: "xml rdf sql", TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.SearchContext(context.Background(), Query{Text: "xml rdf sql", TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "background vs context", a, b)

	gres, err := eng.SearchExactGST("xml rdf sql", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	uniRes, err := eng.Search(context.Background(), Query{Text: "xml rdf sql", TopK: 2, Variant: ExactGST})
	if err != nil {
		t.Fatal(err)
	}
	if uniRes.GST == nil || len(uniRes.GST.Trees) != len(gres.Trees) {
		t.Fatalf("unified GST result disagrees: %+v vs %+v", uniRes.GST, gres)
	}

	bres, err := eng.SearchBANKS("xml rdf sql", 2, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	uniB, err := eng.Search(context.Background(), Query{Text: "xml rdf sql", TopK: 2, Variant: BANKS, Bidirectional: true})
	if err != nil {
		t.Fatal(err)
	}
	if uniB.Banks == nil || len(uniB.Banks.Trees) != len(bres.Trees) {
		t.Fatalf("unified BANKS result disagrees: %+v vs %+v", uniB.Banks, bres)
	}
}
