package wikisearch

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wikisearch/internal/core"
	"wikisearch/internal/trace"
)

// BatchOptions tunes the engine's shared-frontier query batching. Batching
// multiplexes concurrent searches that agree on every expansion-shaping knob
// (α, λ, thread count, activation) into one bottom-up run over per-query
// matrix column groups: the shared traversal is paid once instead of once
// per query, while answers stay bit-identical to solo execution.
type BatchOptions struct {
	// Window is how long an open batch waits for companions before it
	// launches (default 200µs). Shorter windows cost less latency but
	// coalesce less under moderate load; see DESIGN.md §9 for tuning.
	Window time.Duration
	// MaxColumns caps the total keyword columns of one batch (default 8,
	// max 64). At 8 every multiplexed matrix row is a single machine word,
	// so the batched kernel keeps the solo kernel's word-wide fast path.
	MaxColumns int
	// MaxQueries caps the queries of one batch (default and max 8: the
	// owner-group attribution packs one bit per query into a byte).
	MaxQueries int
	// Observer, when set, receives every batch execution (for metrics).
	// It must be safe for concurrent use.
	Observer func(BatchExecution)
}

// BatchExecution describes one launched batch to the observer.
type BatchExecution struct {
	// Queries and Columns are the batch's occupancy at launch: callers
	// served and distinct keyword columns expanded.
	Queries int
	Columns int
	// Distinct is the number of column groups the batch ran — identical
	// in-flight queries collapse into one group, so Queries/Distinct is
	// the batch's duplication ratio.
	Distinct int
	// Wait is how long the batch was open before launching.
	Wait time.Duration
	// Solo reports that the batch degenerated to a single query and ran
	// through the ordinary solo path.
	Solo bool
}

func (o BatchOptions) defaults() BatchOptions {
	if o.Window <= 0 {
		o.Window = 200 * time.Microsecond
	}
	if o.MaxColumns <= 0 {
		o.MaxColumns = 8
	}
	if o.MaxColumns > core.MaxKeywords {
		o.MaxColumns = core.MaxKeywords
	}
	if o.MaxQueries <= 0 || o.MaxQueries > core.MaxBatchQueries {
		o.MaxQueries = core.MaxBatchQueries
	}
	return o
}

// EnableBatching turns on shared-frontier query batching: concurrent
// Search calls whose queries resolve to the same α, λ, thread count and
// activation setting are coalesced, within o.Window, into one shared
// bottom-up expansion. Results are bit-identical to solo execution; only
// latency (bounded by the window) and throughput change. Safe to call
// concurrently with searches.
func (e *Engine) EnableBatching(o BatchOptions) {
	e.batcher.Store(&batcher{eng: e, opt: o.defaults(), open: map[batchKey][]*openBatch{}})
}

// DisableBatching turns batching off; in-flight batches drain normally.
func (e *Engine) DisableBatching() {
	e.batcher.Store(nil)
}

// batchKey is the compatibility class of a query: two queries may share a
// bottom-up expansion only if every knob that shapes the shared traversal
// is equal. Per-query knobs (k, max level, level-cover) stay exact per
// column group and are not part of the key. The epoch id keeps queries
// pinned to different snapshots apart: a batch reads one graph.
type batchKey struct {
	alpha, lambda     float64
	threads           int
	disableActivation bool
	epoch             uint64
}

// batcher multiplexes admitted queries into per-key open batches and runs
// launched batches through a bounded set of executor slots: while every
// slot is busy, open batches keep absorbing members (group commit), and a
// freed slot immediately picks up the oldest ready batch.
type batcher struct {
	eng *Engine
	opt BatchOptions

	mu sync.Mutex
	// open holds the accepting batches of each compatibility class, oldest
	// first. There can be several: a column-full batch stays open absorbing
	// duplicates of its queries while a younger batch collects fresh ones.
	open           map[batchKey][]*openBatch
	ready          []*openBatch // launched batches waiting for a slot, FIFO
	running        int          // executions in flight
	runningThreads int          // sum of their Tnum, for the slot bound
}

// maxBatchEntries caps the callers one batch may serve. Identical queries
// collapse into one column group, so a batch can hold far more callers than
// column groups; the cap bounds the twin scan and per-batch memory.
const maxBatchEntries = 64

// openBatch is one batch accepting members until its window expires, an
// incompatible query overflows it, or it reaches the entry cap. A batch
// whose columns are full stays open: duplicates of its members still join
// for free.
type openBatch struct {
	key      batchKey
	p        core.Params // shared resolved params of the first member
	entries  []*batchEntry
	columns  int // keyword columns of the distinct queries
	distinct int // distinct queries (column groups) admitted
	timer    *time.Timer
	launched bool // retired from the open set (ready or running)
	ripe     bool // window expired while every slot was busy; still absorbing
	openedAt time.Time
}

// twin returns whether ob already holds a query identical to e.
func (ob *openBatch) twin(e *batchEntry) bool {
	for _, m := range ob.entries {
		if sameQuery(m, e) {
			return true
		}
	}
	return false
}

// sameQuery reports whether two admitted entries are the same search:
// equal resolved terms and equal per-query knobs. The batch-shaping knobs
// (α, λ, threads, activation) are already equal through the batch key, and
// only the matrix-based variants are eligible, so these fields are the
// whole difference; such twins share one column group and one answer set.
func sameQuery(a, b *batchEntry) bool {
	if a.q.TopK != b.q.TopK || a.q.MaxLevel != b.q.MaxLevel ||
		a.q.DisableLevelCover != b.q.DisableLevelCover {
		return false
	}
	if len(a.terms) != len(b.terms) {
		return false
	}
	for i := range a.terms {
		if a.terms[i] != b.terms[i] {
			return false
		}
	}
	return true
}

// batchEntry is one admitted query waiting for its batch to run. Each entry
// holds its own epoch pin (taken at admission, while the caller's pin still
// protects the epoch) because the caller may stop waiting on ctx.Done and
// drop its pin while the batch still reads the snapshot; run releases the
// entry's pin when it delivers.
type batchEntry struct {
	q     Query
	ctx   context.Context
	ep    *epoch
	in    core.Input
	terms []string
	start searchStart // admission time; becomes the trace's batch-wait origin

	res  *Result
	err  error
	done chan struct{}
}

// eligible reports whether q can be batched at all: only the matrix-based
// CPU variants share a state, and the query must fit a batch by itself.
func (b *batcher) eligible(q Query, nterms int) bool {
	if q.Variant != CPUPar && q.Variant != Sequential {
		return false
	}
	return nterms <= b.opt.MaxColumns
}

// do admits a prepared query and waits for its batch to deliver. A caller
// whose context fires stops waiting immediately; the batch still completes
// for its other members.
func (b *batcher) do(ctx context.Context, ep *epoch, q Query, in core.Input, terms []string, start searchStart) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e := &batchEntry{q: q, ctx: ctx, ep: ep, in: in, terms: terms, start: start, done: make(chan struct{})}
	b.admit(e)
	select {
	case <-e.done:
		return e.res, e.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// admit places e into an open batch of its compatibility class, opening one
// (with a launch timer) if needed. A duplicate of an admitted query joins
// its batch for free — it adds no columns — so even a column-full batch
// keeps absorbing repeats of the queries it already carries. A distinct
// query joins the oldest batch with column room, or opens a fresh one; the
// full batches stay open for their duplicates until their windows fire.
func (b *batcher) admit(e *batchEntry) {
	// The entry takes its own pin while the caller's pin still holds the
	// epoch open; see batchEntry.
	e.ep.pin()
	p := e.ep.snap.params(e.q)
	key := batchKey{alpha: p.Alpha, lambda: p.Lambda, threads: p.Threads, disableActivation: e.q.DisableActivation, epoch: e.ep.id}
	cols := len(e.terms)

	b.mu.Lock()
	var ob *openBatch
	twin := false
	for _, o := range b.open[key] {
		if o.twin(e) {
			ob, twin = o, true
			break
		}
	}
	if ob == nil {
		for _, o := range b.open[key] {
			if o.columns+cols <= b.opt.MaxColumns && o.distinct < b.opt.MaxQueries {
				ob = o
				break
			}
		}
	}
	if ob == nil {
		ob = &openBatch{key: key, p: p, openedAt: time.Now()}
		b.open[key] = append(b.open[key], ob)
		ob.timer = time.AfterFunc(b.opt.Window, func() { b.windowExpired(ob) })
	}
	ob.entries = append(ob.entries, e)
	if !twin {
		ob.columns += cols
		ob.distinct++
	}
	if len(ob.entries) >= maxBatchEntries {
		b.retireLocked(ob)
		b.dispatchLocked()
	}
	b.mu.Unlock()
}

// windowExpired ripens ob when its coalescing window elapses: the batch is
// now willing to run, but it stays open — still absorbing members — until a
// dispatch can actually start it. With a free executor slot that is
// immediate; on a saturated machine it is the moment a slot frees.
func (b *batcher) windowExpired(ob *openBatch) {
	b.mu.Lock()
	if !ob.launched {
		ob.ripe = true
		b.dispatchLocked()
	}
	b.mu.Unlock()
}

// slotFreeLocked (b.mu held) reports whether an execution needing thr
// workers may start now. At least one execution always may.
func (b *batcher) slotFreeLocked(thr int) bool {
	return b.running == 0 || b.runningThreads+thr <= runtime.GOMAXPROCS(0)
}

// retireLocked (b.mu held) moves ob from the open set to the ready queue;
// it stops accepting members once retired.
func (b *batcher) retireLocked(ob *openBatch) {
	ob.launched = true
	ob.timer.Stop()
	obs := b.open[ob.key]
	for i, o := range obs {
		if o == ob {
			b.open[ob.key] = append(obs[:i], obs[i+1:]...)
			break
		}
	}
	if len(b.open[ob.key]) == 0 {
		delete(b.open, ob.key)
	}
	b.ready = append(b.ready, ob)
}

// oldestRipeLocked (b.mu held) returns the ripe open batch that has waited
// longest, or nil.
func (b *batcher) oldestRipeLocked() *openBatch {
	var best *openBatch
	for _, obs := range b.open {
		for _, o := range obs {
			if o.ripe && (best == nil || o.openedAt.Before(best.openedAt)) {
				best = o
			}
		}
	}
	return best
}

// dispatchLocked (b.mu held) starts executions while slots are free: the
// ready queue first, then the oldest ripe open batch. Ripe batches are
// retired one at a time, each at the moment a slot can take it, so the ones
// still waiting keep absorbing members. Admission never blocks behind a
// search: execution happens on its own goroutine.
func (b *batcher) dispatchLocked() {
	for {
		if len(b.ready) == 0 {
			if o := b.oldestRipeLocked(); o != nil && b.slotFreeLocked(o.p.Threads) {
				b.retireLocked(o)
			}
		}
		if len(b.ready) == 0 || !b.slotFreeLocked(b.ready[0].p.Threads) {
			return
		}
		ob := b.ready[0]
		b.ready = b.ready[1:]
		b.running++
		b.runningThreads += ob.p.Threads
		go b.exec(ob) //wikisearch:daemon bounded by batch execution; joined via the running counter under b.mu
	}
}

// exec runs one batch, then releases its slot and dispatches whatever
// became ready in the meantime — the ready queue first, then the batch that
// ripened while the slots were busy.
func (b *batcher) exec(ob *openBatch) {
	b.run(ob)
	// On a saturated machine the members just woken by run — and any window
	// timers that expired during it — have not had the CPU yet. Yield before
	// releasing the slot so resubmissions land in open batches and those
	// batches ripen while the slot still reads busy; the dispatch below then
	// starts whole groups instead of one-query fragments.
	runtime.Gosched()
	b.mu.Lock()
	b.running--
	b.runningThreads -= ob.p.Threads
	b.dispatchLocked()
	b.mu.Unlock()
}

func (b *batcher) observe(ex BatchExecution) {
	if b.opt.Observer != nil {
		b.opt.Observer(ex)
	}
}

// run executes a launched batch: members whose callers already gave up are
// dropped, a lone survivor takes the ordinary solo path, and the remaining
// distinct queries share one bottom-up expansion via column groups —
// identical queries collapse into one group and each member resolves its
// own answer set from the shared result.
func (b *batcher) run(ob *openBatch) {
	wait := time.Since(ob.openedAt)
	live := ob.entries[:0]
	for _, e := range ob.entries {
		if err := e.ctx.Err(); err != nil {
			e.err = err
			close(e.done)
			e.ep.unpin()
			continue
		}
		live = append(live, e)
	}
	if len(live) == 0 {
		return
	}
	if len(live) == 1 {
		e := live[0]
		// The fallback's trace records the coalescing wait the caller paid
		// even though no companions arrived.
		start := e.start
		start.waitNs = int64(wait)
		start.solo = true
		e.res, e.err = b.eng.runPrepared(e.ctx, e.ep, e.q, e.in, e.terms, start)
		close(e.done)
		e.ep.unpin()
		b.observe(BatchExecution{Queries: 1, Columns: len(e.terms), Distinct: 1, Wait: wait, Solo: true})
		return
	}

	// Collapse twins: reps holds the first member of every distinct query,
	// gi maps each live member to its column group.
	reps := make([]*batchEntry, 0, len(live))
	gi := make([]int, len(live))
	for i, e := range live {
		gi[i] = -1
		for j, r := range reps {
			if sameQuery(r, e) {
				gi[i] = j
				break
			}
		}
		if gi[i] < 0 {
			gi[i] = len(reps)
			reps = append(reps, e)
		}
	}

	p := ob.p
	cancel := mergeCancel(&p, live)
	if cancel != nil {
		defer cancel()
	}

	// Every member pinned the same epoch (the id is in the batch key), so
	// the batch reads one consistent snapshot.
	sn := live[0].ep.snap
	var levels []uint8
	if ob.key.disableActivation {
		levels = sn.zeroLevels()
	} else {
		levels = sn.activationLevels(p.Alpha, p.Threads, &b.eng.levelComputes)
	}
	bin := core.BatchInput{G: sn.g, Weights: sn.weights, Levels: levels}
	cols := 0
	for _, e := range reps {
		bin.Queries = append(bin.Queries, core.BatchQuery{
			Terms:             e.terms,
			Sources:           e.in.Sources,
			TopK:              e.q.TopK,
			MaxLevel:          e.q.MaxLevel,
			DisableLevelCover: e.q.DisableLevelCover,
		})
		cols += len(e.terms)
	}

	st := b.eng.acquireState()
	st.SetTracing(b.eng.TracingEnabled())
	runNs0 := trace.Now()
	results, err := st.SearchBatch(bin, p)
	runNs1 := trace.Now()
	shared, dropped := st.DrainTrace(nil)
	b.eng.releaseState(st)

	// Per-group column offsets into the shared matrix, for attribution.
	offs := make([]int, len(reps))
	for j := 1; j < len(reps); j++ {
		offs[j] = offs[j-1] + len(reps[j-1].terms)
	}

	for i, e := range live {
		if err != nil {
			// The shared run can only be cancelled once every member's
			// context fired; report each member its own context error.
			if cerr := e.ctx.Err(); cerr != nil {
				e.err = cerr
			} else {
				e.err = err
			}
		} else {
			e.res = sn.resolve(e.terms, results[gi[i]], 0)
		}
		// Every member's trace carries the whole shared run: the kernel's
		// events verbatim (group bitmasks attribute per-group work), plus two
		// synthetic spans — this member's own coalescing wait and the shared
		// execution interval the kernel spans nest under.
		g := gi[i]
		ev := make([]trace.Event, 0, len(shared)+2)
		ev = append(ev,
			trace.Event{Start: e.start.ns, End: runNs0, Kind: trace.KindBatchWait,
				Level: -1, Groups: 1 << uint(g), A: int64(len(live)), B: int64(cols)},
			trace.Event{Start: runNs0, End: runNs1, Kind: trace.KindBatchRun,
				Level: -1, A: int64(len(live)), B: int64(cols)})
		ev = append(ev, shared...)
		b.eng.collectTrace(e.ctx, e.q, e.terms, e.res, e.err, traceMeta{
			start:        searchStart{ns: e.start.ns, t: e.start.t, waitNs: runNs0 - e.start.ns},
			epoch:        e.ep.id,
			batched:      true,
			batchQueries: len(live),
			batchColumns: cols,
			group:        g,
			groupOff:     offs[g],
			groupCols:    len(reps[g].terms),
			events:       ev,
			dropped:      dropped,
		})
		close(e.done)
		e.ep.unpin()
	}
	b.observe(BatchExecution{Queries: len(live), Columns: cols, Distinct: len(reps), Wait: wait})
}

// mergeCancel wires the members' contexts into the shared run: the batch is
// cancelled only when every member's context has fired, so one impatient
// caller never aborts its companions. Members with uncancellable contexts
// pin the run; no merged context is installed then. The returned cleanup
// (nil when no context was installed) releases the watchers.
func mergeCancel(p *core.Params, live []*batchEntry) func() {
	for _, e := range live {
		if e.ctx.Done() == nil {
			return nil
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var remaining atomic.Int64
	remaining.Store(int64(len(live)))
	stops := make([]func() bool, 0, len(live))
	for _, e := range live {
		stops = append(stops, context.AfterFunc(e.ctx, func() {
			if remaining.Add(-1) == 0 {
				cancel()
			}
		}))
	}
	p.Ctx = ctx
	return func() {
		for _, stop := range stops {
			stop()
		}
		cancel()
	}
}
