// RDF import scenario: load a small N-Triples snippet — the export format
// of Wikidata, Freebase and Yago (§I: these knowledge graphs "can all be
// represented in an RDF graph") — and search it. This is the path a user
// with real RDF data takes: ImportNTriples → NewEngine → Search.
//
// Run with: go run ./examples/rdf
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"wikisearch"
)

// A hand-written Wikidata-flavored snippet around query languages.
const triples = `
<http://kb/Q1> <http://www.w3.org/2000/01/rdf-schema#label> "SQL"@en .
<http://kb/Q1> <http://schema.org/description> "query language for relational databases" .
<http://kb/Q2> <http://www.w3.org/2000/01/rdf-schema#label> "SPARQL"@en .
<http://kb/Q2> <http://schema.org/description> "RDF query language" .
<http://kb/Q3> <http://www.w3.org/2000/01/rdf-schema#label> "XQuery"@en .
<http://kb/Q3> <http://schema.org/description> "XML query language" .
<http://kb/Q4> <http://www.w3.org/2000/01/rdf-schema#label> "query language"@en .
<http://kb/Q5> <http://www.w3.org/2000/01/rdf-schema#label> "RDF"@en .
<http://kb/Q6> <http://www.w3.org/2000/01/rdf-schema#label> "XPath"@en .
<http://kb/Q1> <http://kb/prop/instanceOf> <http://kb/Q4> .
<http://kb/Q2> <http://kb/prop/instanceOf> <http://kb/Q4> .
<http://kb/Q3> <http://kb/prop/instanceOf> <http://kb/Q4> .
<http://kb/Q6> <http://kb/prop/instanceOf> <http://kb/Q4> .
<http://kb/Q2> <http://kb/prop/designedFor> <http://kb/Q5> .
<http://kb/Q6> <http://kb/prop/relatedTo> <http://kb/Q3> .
<http://kb/Q1> <http://kb/prop/appearedIn> "1974"^^<http://www.w3.org/2001/XMLSchema#gYear> .
`

func main() {
	g, stats, err := wikisearch.ImportNTriples(strings.NewReader(triples))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("imported %d triples: %d edges, %d labels, %d descriptions (%d literals skipped)\n",
		stats.Triples, stats.Edges, stats.Labels, stats.Descs, stats.SkippedLits)
	fmt.Printf("graph: %d nodes, %d edges\n\n", g.NumNodes(), g.NumEdges())

	eng, err := wikisearch.NewEngine(g, wikisearch.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Search(context.Background(), wikisearch.Query{Text: "xml rdf sql", TopK: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %q → %d answers (d=%d)\n", "xml rdf sql", len(res.Answers), res.Depth)
	for i := range res.Answers {
		a := &res.Answers[i]
		fmt.Printf("  %d. [%.4f] central %q\n", i+1, a.Score, a.CentralLabel)
		for _, n := range a.Nodes {
			kw := ""
			if len(n.Keywords) > 0 {
				kw = " {" + strings.Join(n.Keywords, ",") + "}"
			}
			fmt.Printf("       %s%s\n", n.Label, kw)
		}
	}
}
