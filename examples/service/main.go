// End-to-end service scenario: generate a knowledge base, persist it,
// reload it (the wikigen → wikiserve pipeline, programmatically), serve it
// over HTTP on a local port, and query it with a plain HTTP client — the
// full life cycle of the paper's online WikiSearch demo.
//
// Run with: go run ./examples/service
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"time"

	"wikisearch"
	"wikisearch/internal/server"
)

func main() {
	// 1. Generate and persist a dataset.
	ds, err := wikisearch.GenerateDataset(wikisearch.DatasetConfig{Preset: "tiny-sim"})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := wikisearch.NewEngine(ds.Graph, wikisearch.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	eng.SetName(ds.Name)
	dir, err := os.MkdirTemp("", "wikisearch-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dump := filepath.Join(dir, "kb.wskb")
	if err := eng.Save(dump); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(dump)
	fmt.Printf("saved %s: %.1f MB\n", dump, float64(st.Size())/(1<<20))

	// 2. Reload — what wikiserve does at startup.
	eng2, err := wikisearch.LoadEngine(dump, wikisearch.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded %s: %d nodes, %d edges, A=%.2f\n",
		eng2.Name(), eng2.Graph().NumNodes(), eng2.Graph().NumEdges(), eng2.AvgDistance())

	// 3. Serve on an ephemeral local port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: server.New(eng2), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //wikisearch:daemon shut down by the deferred srv.Close below
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n\n", base)

	// 4. Query over HTTP like any client would.
	for _, q := range []string{"statistical relational learning", "wikidata freebase sparql"} {
		u := base + "/search?k=3&q=" + url.QueryEscape(q)
		resp, err := http.Get(u)
		if err != nil {
			log.Fatal(err)
		}
		var payload struct {
			Terms   []string `json:"terms"`
			Depth   int      `json:"depth"`
			TotalMs float64  `json:"total_ms"`
			Answers []struct {
				Central string  `json:"central"`
				Score   float64 `json:"score"`
				Nodes   []struct {
					Label    string   `json:"label"`
					Keywords []string `json:"keywords"`
				} `json:"nodes"`
			} `json:"answers"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("GET /search?q=%q → terms %v, d=%d, %.2f ms\n", q, payload.Terms, payload.Depth, payload.TotalMs)
		for i, a := range payload.Answers {
			fmt.Printf("  %d. [%.4f] %s (%d nodes)\n", i+1, a.Score, a.Central, len(a.Nodes))
		}
		fmt.Println()
	}

	// 5. Stats endpoint.
	resp, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	json.NewDecoder(resp.Body).Decode(&stats) //nolint:errcheck
	fmt.Printf("GET /stats → %v\n", stats)
}
