// α-tuning scenario: §IV-C's "data mining" story. The runtime parameter α
// decides how early summary nodes activate. The example builds a graph
// where two keyword carriers are connected both through light "reading
// list" nodes and through a heavy "catalogue" hub whose degree-of-summary
// weight sits between the two α regimes: with α = 0.05 the hub activates
// late, so the top answers route around it; with α = 0.4 it activates
// immediately and appears among the top answers — the paper's observation
// that "larger α … 'decreases' the weight of data mining to some extent".
//
// Run with: go run ./examples/tuning
package main

import (
	"context"
	"fmt"
	"log"

	"wikisearch"
)

func main() {
	b := wikisearch.NewBuilder()

	// A Wikidata-style superhub ("human") that anchors the weight
	// normalization, exactly like the 2M-in-edge human node of §IV-A.
	human := b.AddNode("human", "")
	for i := 0; i < 4000; i++ {
		p := b.AddNode(fmt.Sprintf("person %d", i), "")
		b.AddEdgeNamed(p, human, "instance of")
	}

	// The mid-weight summary hub — the example's "data mining"-style topic
	// catalogue: same-labeled in-edges push its normalized weight to ≈0.29,
	// above α=0.05 (penalty ⇒ late activation) but below α=0.4 (reward ⇒
	// immediate activation).
	catalogue := b.AddNode("general topic catalogue", "")
	for i := 0; i < 8; i++ {
		c := b.AddNode(fmt.Sprintf("curator %d", i), "")
		b.AddEdgeNamed(c, catalogue, "listed in")
	}

	// Two keyword carriers...
	s1 := b.AddNode("mining patterns from data streams", "") // {data, mining}
	s2 := b.AddNode("survey of information retrieval", "")   // {information, retrieval}
	// ...connected through the heavy catalogue (one hop) and through a
	// lighter but longer citation chain (two hops).
	a := b.AddNode("workshop proceedings", "")
	c := b.AddNode("journal special issue", "")
	b.AddEdgeNamed(s1, a, "cites")
	b.AddEdgeNamed(a, c, "cites")
	b.AddEdgeNamed(c, s2, "cites")
	b.AddEdgeNamed(s1, catalogue, "listed in")
	b.AddEdgeNamed(s2, catalogue, "listed in")

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	eng, err := wikisearch.NewEngine(g, wikisearch.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, A = %.2f\n", g.NumNodes(), eng.AvgDistance())
	fmt.Printf("weights: catalogue %.3f, chain nodes %.3f, human %.3f\n\n",
		eng.Weight(catalogue), eng.Weight(a), eng.Weight(human))

	const query = "data mining information retrieval"
	for _, alpha := range []float64{0.05, 0.4} {
		res, err := eng.Search(context.Background(), wikisearch.Query{Text: query, TopK: 1, Alpha: alpha})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("α = %.2f  (d=%d, %d candidates)\n", alpha, res.Depth, res.Candidates)
		hubAppears := false
		for i := range res.Answers {
			a := &res.Answers[i]
			fmt.Printf("  %d. [%.4f] central %q, depth %d, %d nodes\n",
				i+1, a.Score, a.CentralLabel, a.Depth, len(a.Nodes))
			for _, n := range a.Nodes {
				if n.ID == catalogue {
					hubAppears = true
				}
			}
		}
		if hubAppears {
			fmt.Println("  → the heavy catalogue hub IS in the top answers (early activation)")
		} else {
			fmt.Println("  → the heavy catalogue hub is ABSENT (activation delayed, answers route around it)")
		}
		fmt.Println()
	}

	fmt.Println("Fig. 3 analogue — node distribution over activation levels [0 1 2 3 ≥4]:")
	for _, alpha := range []float64{0.05, 0.1, 0.4} {
		fmt.Printf("  α=%.2f: %v\n", alpha, eng.ActivationDistribution(alpha, 5))
	}
}
