// Answer-model comparison: Central Graphs vs BANKS-II trees on one query,
// side by side — the paper's §I/§VI-B argument made concrete. Graph-shaped
// answers admit multiple nodes per keyword and carry co-occurrence nodes;
// tree answers split phrases across nodes and repeat each other.
//
// Run with: go run ./examples/comparison
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"wikisearch"
)

func main() {
	ds, err := wikisearch.GenerateDataset(wikisearch.DatasetConfig{Preset: "tiny-sim"})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := wikisearch.NewEngine(ds.Graph, wikisearch.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Use a planted effectiveness query so the ground truth is known.
	var planted *wikisearch.PlantedQuery
	for i := range ds.Planted {
		if ds.Planted[i].ID == "Q4" {
			planted = &ds.Planted[i]
		}
	}
	query := strings.Join(planted.Keywords, " ")
	cores := map[wikisearch.NodeID]bool{}
	for _, c := range planted.Cores {
		cores[c] = true
	}
	fmt.Printf("query %s: %q  (%d planted relevant cores)\n\n", planted.ID, query, len(planted.Cores))

	fmt.Println("--- Central Graphs (WikiSearch) ---")
	res, err := eng.Search(context.Background(), wikisearch.Query{Text: query, TopK: 5})
	if err != nil {
		log.Fatal(err)
	}
	for i := range res.Answers {
		a := &res.Answers[i]
		rel := ""
		for _, n := range a.Nodes {
			if cores[n.ID] {
				rel = "  [contains planted core → relevant]"
				break
			}
		}
		fmt.Printf("%d. [%.4f] %s (depth %d, %d nodes)%s\n",
			i+1, a.Score, a.CentralLabel, a.Depth, len(a.Nodes), rel)
		// Show multi-keyword nodes — the co-occurrence the level-cover keeps.
		for _, n := range a.Nodes {
			if len(n.Keywords) >= 2 {
				fmt.Printf("     co-occurrence node: %q {%s}\n", n.Label, strings.Join(n.Keywords, ", "))
			}
		}
	}

	fmt.Println("\n--- BANKS-II trees ---")
	bresFull, err := eng.Search(context.Background(), wikisearch.Query{
		Text: query, TopK: 5, Variant: wikisearch.BANKS, Bidirectional: true, MaxVisits: 50000,
	})
	if err != nil {
		log.Fatal(err)
	}
	bres := bresFull.Banks
	prev := map[wikisearch.NodeID]bool{}
	for i, t := range bres.Trees {
		rel := ""
		overlap := 0
		for _, n := range t.Nodes {
			if cores[n] {
				rel = "  [relevant]"
			}
			if prev[n] {
				overlap++
			}
			prev[n] = true
		}
		fmt.Printf("%d. [%.3f] rooted at %q (%d nodes, %d shared with earlier trees)%s\n",
			i+1, t.Score, eng.Graph().Label(t.Root), len(t.Nodes), overlap, rel)
	}
	fmt.Printf("\nBANKS-II visited %d nodes; WikiSearch total %v.\n", bres.Visited, res.Total)
}
