// Quickstart: build a tiny knowledge graph in memory, prepare an engine,
// and run one keyword query — the Fig. 1 scenario of the paper (query
// languages, keywords "XML RDF SQL").
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"wikisearch"
)

func main() {
	// 1. Build the graph: query languages around a "Query language" hub.
	b := wikisearch.NewBuilder()
	fql := b.AddNode("Facebook Query Language", "")
	sql := b.AddNode("SQL", "query language for relational databases")
	hub := b.AddNode("Query language", "")
	sparql := b.AddNode("SPARQL query language for RDF", "")
	s11 := b.AddNode("SPARQL 1.1", "")
	rdfql := b.AddNode("RDF query language", "")
	xquery := b.AddNode("XQuery", "XML query language")
	xpath := b.AddNode("XPath", "XML path language")
	xpath2 := b.AddNode("XPath 2", "")
	xpath3 := b.AddNode("XPath 3", "")

	b.AddEdgeNamed(fql, hub, "instance of")
	b.AddEdgeNamed(sql, hub, "instance of")
	b.AddEdgeNamed(sparql, hub, "instance of")
	b.AddEdgeNamed(rdfql, hub, "instance of")
	b.AddEdgeNamed(xquery, hub, "instance of")
	b.AddEdgeNamed(xpath, hub, "instance of")
	b.AddEdgeNamed(s11, sparql, "version of")
	b.AddEdgeNamed(rdfql, sparql, "related to")
	b.AddEdgeNamed(xpath2, xpath, "version of")
	b.AddEdgeNamed(xpath3, xquery, "related to")
	b.AddEdgeNamed(xpath, xquery, "related to")

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Prepare the engine: inverted index, degree-of-summary weights,
	// sampled average distance.
	eng, err := wikisearch.NewEngine(g, wikisearch.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges; A = %.2f\n\n",
		g.NumNodes(), g.NumEdges(), eng.AvgDistance())

	// 3. Search. Answers are Central Graphs: graph-shaped, possibly with
	// several nodes contributing the same keyword (here two RDF nodes).
	res, err := eng.Search(context.Background(), wikisearch.Query{Text: "XML RDF SQL", TopK: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query terms: %v  (d = %d, %d candidates, %v total)\n\n",
		res.Terms, res.Depth, res.Candidates, res.Total)
	for i := range res.Answers {
		a := &res.Answers[i]
		fmt.Printf("#%d  central: %q  score %.4f  depth %d\n",
			i+1, a.CentralLabel, a.Score, a.Depth)
		for _, n := range a.Nodes {
			mark := "     "
			if n.IsCentral {
				mark = "  *  "
			}
			kw := ""
			if len(n.Keywords) > 0 {
				kw = "  {" + strings.Join(n.Keywords, ", ") + "}"
			}
			fmt.Printf("%s%s%s\n", mark, n.Label, kw)
		}
		fmt.Println()
	}
}
