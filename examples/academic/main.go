// Academic-search scenario: the paper's motivating workload — researchers
// issuing topic-phrase queries (AAAI-keyword style) against a large
// bibliographic knowledge base. Generates a synthetic KB, runs several
// multi-keyword queries with all execution variants, and shows that the
// lock-free parallel search returns the same answers at a fraction of
// BANKS-II's cost.
//
// Run with: go run ./examples/academic
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"wikisearch"
)

func main() {
	fmt.Println("generating wiki2017-sim (≈60k nodes, ≈500k edges)...")
	ds, err := wikisearch.GenerateDataset(wikisearch.DatasetConfig{Preset: "wiki2017-sim"})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := wikisearch.NewEngine(ds.Graph, wikisearch.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ready: %d nodes, %d edges, A=%.2f, %d keywords\n\n",
		ds.Graph.NumNodes(), ds.Graph.NumEdges(), eng.AvgDistance(), eng.VocabSize())

	queries := []string{
		"statistical relational learning inference",
		"database indexing ranking search",
		"supervised learning gradient descent machine translation",
	}
	for _, q := range queries {
		fmt.Printf("query: %q\n", q)

		// Central Graph search, parallel lock-free.
		res, err := eng.Search(context.Background(), wikisearch.Query{Text: q, TopK: 5})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  CPU-Par:  %8v  d=%d  candidates=%d\n",
			res.Total.Round(time.Microsecond), res.Depth, res.Candidates)
		for i := range res.Answers {
			a := &res.Answers[i]
			fmt.Printf("    %d. [%.4f] %s  (%d nodes", i+1, a.Score, a.CentralLabel, len(a.Nodes))
			if a.PrunedNodes > 0 {
				fmt.Printf(", %d pruned by level-cover", a.PrunedNodes)
			}
			fmt.Println(")")
		}

		// Same query through the lock-based dynamic variant: identical
		// answers, slower expansion.
		resD, err := eng.Search(context.Background(), wikisearch.Query{Text: q, TopK: 5, Variant: wikisearch.CPUParD})
		if err != nil {
			log.Fatal(err)
		}
		same := len(resD.Answers) == len(res.Answers)
		for i := range resD.Answers {
			if !same || resD.Answers[i].Central != res.Answers[i].Central {
				same = false
				break
			}
		}
		fmt.Printf("  CPU-Par-d: %8v  identical answers: %v\n",
			resD.Total.Round(time.Microsecond), same)

		// BANKS-II baseline, visit-capped.
		t0 := time.Now()
		bresFull, err := eng.Search(context.Background(), wikisearch.Query{
			Text: q, TopK: 5, Variant: wikisearch.BANKS, Bidirectional: true, MaxVisits: 100000,
		})
		if err != nil {
			log.Fatal(err)
		}
		bres := bresFull.Banks
		fmt.Printf("  BANKS-II: %8v  %d trees (%d nodes visited)\n",
			time.Since(t0).Round(time.Microsecond), len(bres.Trees), bres.Visited)
		if len(bres.Trees) > 0 {
			fmt.Printf("    best: [%.3f] rooted at %q\n", bres.Trees[0].Score, bres.Trees[0].RootLabel)
		}
		fmt.Println()
	}
}
