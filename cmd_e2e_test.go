package wikisearch_test

// End-to-end tests of the command-line tools: build the real binaries and
// drive the wikigen → wikisearch / wikiserve pipeline on a tiny dataset.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTools compiles the cmds once into a shared temp dir.
func buildTools(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping cmd e2e in -short mode")
	}
	dir := t.TempDir()
	for _, tool := range []string{"wikigen", "wikisearch", "benchrunner"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	return dir
}

func TestCmdPipeline(t *testing.T) {
	bin := buildTools(t)
	work := t.TempDir()
	dump := filepath.Join(work, "tiny.wskb")

	// wikigen: generate and save.
	out, err := exec.Command(filepath.Join(bin, "wikigen"),
		"-preset", "tiny-sim", "-out", dump).CombinedOutput()
	if err != nil {
		t.Fatalf("wikigen: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "generated tiny-sim") || !strings.Contains(string(out), "wrote") {
		t.Fatalf("wikigen output: %s", out)
	}
	if st, err := os.Stat(dump); err != nil || st.Size() == 0 {
		t.Fatalf("dump missing: %v", err)
	}

	// wikisearch: one-shot query against the dump.
	out, err = exec.Command(filepath.Join(bin, "wikisearch"),
		"-kb", dump, "-q", "statistical relational learning", "-k", "3").CombinedOutput()
	if err != nil {
		t.Fatalf("wikisearch: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "loaded tiny-sim") || !strings.Contains(s, "terms=") {
		t.Fatalf("wikisearch output: %s", s)
	}
	if !strings.Contains(s, "1.") {
		t.Fatalf("no ranked answers in output: %s", s)
	}

	// wikisearch with the BANKS baseline.
	out, err = exec.Command(filepath.Join(bin, "wikisearch"),
		"-kb", dump, "-q", "statistical relational learning", "-variant", "banks2").CombinedOutput()
	if err != nil {
		t.Fatalf("wikisearch banks2: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "trees in") {
		t.Fatalf("banks output: %s", out)
	}

	// Missing -kb is a usage error.
	if _, err := exec.Command(filepath.Join(bin, "wikisearch"), "-q", "x").CombinedOutput(); err == nil {
		t.Fatal("wikisearch without -kb succeeded")
	}
}

func TestCmdWikigenImport(t *testing.T) {
	bin := buildTools(t)
	work := t.TempDir()

	// Import an N-Triples file into a dump, then query it.
	nt := filepath.Join(work, "kb.nt")
	const triples = `<http://kb/Q1> <http://www.w3.org/2000/01/rdf-schema#label> "statistical relational learning" .
<http://kb/Q2> <http://www.w3.org/2000/01/rdf-schema#label> "inference engines" .
<http://kb/Q1> <http://kb/p/relatedTo> <http://kb/Q2> .
`
	if err := os.WriteFile(nt, []byte(triples), 0o644); err != nil {
		t.Fatal(err)
	}
	dump := filepath.Join(work, "kb.wskb")
	out, err := exec.Command(filepath.Join(bin, "wikigen"),
		"-import-nt", nt, "-out", dump, "-name", "nt-import").CombinedOutput()
	if err != nil {
		t.Fatalf("wikigen -import-nt: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "imported") {
		t.Fatalf("output: %s", out)
	}
	out, err = exec.Command(filepath.Join(bin, "wikisearch"),
		"-kb", dump, "-q", "statistical inference", "-k", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("wikisearch on imported kb: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "loaded nt-import") {
		t.Fatalf("output: %s", out)
	}

	// Import a Wikidata JSON dump.
	wd := filepath.Join(work, "dump.json")
	const entities = `{"type":"item","id":"Q1","labels":{"en":{"value":"parallel keyword search"}},"claims":{}}
{"type":"item","id":"Q2","labels":{"en":{"value":"knowledge graphs"}},"claims":{"P1":[{"mainsnak":{"snaktype":"value","datavalue":{"type":"wikibase-entityid","value":{"id":"Q1"}}}}]}}
`
	if err := os.WriteFile(wd, []byte(entities), 0o644); err != nil {
		t.Fatal(err)
	}
	dump2 := filepath.Join(work, "wd.wskb")
	out, err = exec.Command(filepath.Join(bin, "wikigen"),
		"-import", wd, "-out", dump2).CombinedOutput()
	if err != nil {
		t.Fatalf("wikigen -import: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "2 entities") {
		t.Fatalf("output: %s", out)
	}
}

func TestCmdBenchrunnerFig3(t *testing.T) {
	bin := buildTools(t)
	out, err := exec.Command(filepath.Join(bin, "benchrunner"),
		"-exp", "fig3", "-dataset", "tiny-sim", "-queries", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("benchrunner: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "== fig3") || !strings.Contains(s, "alpha-0.05") {
		t.Fatalf("fig3 output: %s", s)
	}
}
