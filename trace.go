package wikisearch

import (
	"context"
	"time"

	"wikisearch/internal/shard"
	"wikisearch/internal/trace"
)

// TraceCollector retains recently completed query traces; see
// Engine.Traces. The serving layer reads it for GET /v1/debug/traces.
type TraceCollector = trace.Collector

// QueryTrace is one completed query's assembled trace.
type QueryTrace = trace.QueryTrace

// TraceSpan is one node of an assembled trace tree.
type TraceSpan = trace.Span

// TraceEvent is one fixed-width span event of a trace.
type TraceEvent = trace.Event

// WithRequestID returns a context carrying the serving layer's request ID;
// the engine stamps it into the traces it collects so handler and engine
// spans link up.
func WithRequestID(ctx context.Context, id uint64) context.Context {
	return trace.WithRequestID(ctx, id)
}

// Traces returns the engine's trace collector. Tracing is always on by
// default — the record path is allocation-free and costs ~1% — and can be
// toggled with SetTracing.
func (e *Engine) Traces() *TraceCollector { return e.tracer }

// SetTracing enables or disables search tracing (enabled by default).
// Disabling stops both kernel span recording and trace collection; the
// collector retains what was already captured.
func (e *Engine) SetTracing(on bool) { e.traceOff.Store(!on) }

// TracingEnabled reports whether search tracing is on.
func (e *Engine) TracingEnabled() bool { return !e.traceOff.Load() }

// searchStart carries a query's admission timing into the execution paths:
// ns is the trace-clock admission time (for batched members, when they
// entered the coalescing window), t the wall-clock start. waitNs and solo
// describe a batcher pass-through.
type searchStart struct {
	ns     int64
	t      time.Time
	waitNs int64
	solo   bool
}

// startNow opens timing for a query entering the engine.
func startNow() searchStart { return searchStart{ns: trace.Now(), t: time.Now()} }

// traceMeta carries per-query attribution from an execution path to
// collectTrace.
type traceMeta struct {
	start        searchStart
	epoch        uint64
	batched      bool
	batchQueries int
	batchColumns int
	group        int
	groupOff     int
	groupCols    int
	events       []trace.Event
	dropped      int
	shard        *shard.RunInfo
}

// collectTrace assembles and retains one completed query's trace. Cold
// path: runs once per search, after the kernel, and may allocate.
func (e *Engine) collectTrace(ctx context.Context, q Query, terms []string, res *Result, err error, m traceMeta) {
	if e.tracer == nil || e.traceOff.Load() {
		return
	}
	p := e.snap().params(q)
	qt := &QueryTrace{
		RequestID: trace.RequestIDFrom(ctx),
		Query:     q.Text,
		Terms:     terms,
		Variant:   q.Variant.String(),
		Epoch:     m.epoch,
		TopK:      p.TopK,
		Alpha:     p.Alpha,
		Lambda:    p.Lambda,
		Start:     m.start.t,
		StartNs:   m.start.ns,
		Duration:  time.Duration(trace.Now() - m.start.ns),
		Batched:   m.batched,
		Solo:      m.start.solo,
		BatchWait: time.Duration(m.start.waitNs),
		Group:     m.group,
		GroupOff:  m.groupOff,
		GroupCols: m.groupCols,
		Dropped:   m.dropped,
		Events:    m.events,
	}
	if m.batched {
		qt.BatchQueries = m.batchQueries
		qt.BatchColumns = m.batchColumns
	}
	if m.shard != nil {
		qt.Shards = m.shard.Shards
		qt.ShardMessages = m.shard.Messages
		qt.ShardImbalance = m.shard.Imbalance
	}
	if err != nil {
		qt.Err = err.Error()
	} else if res != nil {
		qt.Answers = len(res.Answers)
	}
	e.tracer.Add(qt)
}
